"""Tests for the client-side stash."""

import pytest

from repro.oram.stash import Stash, StashOverflowError, StashReason


class TestBasicOperations:
    def test_put_and_get(self):
        stash = Stash()
        stash.put(1, leaf=3, value=b"v")
        entry = stash.get(1)
        assert entry.leaf == 3 and entry.value == b"v"

    def test_put_replaces_existing(self):
        stash = Stash()
        stash.put(1, 3, b"old")
        stash.put(1, 5, b"new", StashReason.EVICTION_RESIDUE)
        entry = stash.get(1)
        assert entry.value == b"new"
        assert entry.leaf == 5
        assert entry.reason is StashReason.EVICTION_RESIDUE
        assert len(stash) == 1

    def test_remove(self):
        stash = Stash()
        stash.put(1, 0, b"v")
        removed = stash.remove(1)
        assert removed.block_id == 1
        assert 1 not in stash
        assert stash.remove(1) is None

    def test_contains_and_len(self):
        stash = Stash()
        stash.put(1, 0, b"a")
        stash.put(2, 0, b"b")
        assert 1 in stash and 3 not in stash
        assert len(stash) == 2

    def test_entries_sorted_by_block_id(self):
        stash = Stash()
        for block in (5, 1, 3):
            stash.put(block, 0, b"v")
        assert [e.block_id for e in stash.entries()] == [1, 3, 5]

    def test_peak_size_tracked(self):
        stash = Stash()
        for block in range(5):
            stash.put(block, 0, b"v")
        for block in range(5):
            stash.remove(block)
        assert stash.peak_size == 5

    def test_capacity_overflow_raises(self):
        stash = Stash(capacity=2)
        stash.put(1, 0, b"v")
        stash.put(2, 0, b"v")
        with pytest.raises(StashOverflowError):
            stash.put(3, 0, b"v")

    def test_mark_residue(self):
        stash = Stash()
        stash.put(1, 0, b"v")
        stash.mark_residue(1)
        assert stash.get(1).reason is StashReason.EVICTION_RESIDUE

    def test_clear(self):
        stash = Stash()
        stash.put(1, 0, b"v")
        stash.clear()
        assert len(stash) == 0


class TestSerialization:
    def test_roundtrip_preserves_entries(self):
        stash = Stash()
        stash.put(1, 3, b"alpha")
        stash.put(2, 7, b"beta", StashReason.EVICTION_RESIDUE)
        blob = stash.serialize(pad_to_blocks=8, block_size=16)
        restored = Stash.deserialize(blob)
        assert restored.get(1).value == b"alpha"
        assert restored.get(2).reason is StashReason.EVICTION_RESIDUE
        assert len(restored) == 2

    def test_padding_hides_occupancy(self):
        small, large = Stash(), Stash()
        small.put(1, 0, b"x" * 16)
        for block in range(6):
            large.put(block, 0, b"y" * 16)
        blob_small = small.serialize(pad_to_blocks=8, block_size=16)
        blob_large = large.serialize(pad_to_blocks=8, block_size=16)
        # Both serialise eight rows of identical per-row size.
        assert abs(len(blob_small) - len(blob_large)) <= 16

    def test_values_with_trailing_zero_bytes_survive(self):
        stash = Stash()
        stash.put(1, 0, b"abc\x00\x00")
        blob = stash.serialize(pad_to_blocks=2, block_size=16)
        assert Stash.deserialize(blob).get(1).value == b"abc\x00\x00"

    def test_serialize_rejects_pad_below_occupancy(self):
        stash = Stash()
        for block in range(4):
            stash.put(block, 0, b"v")
        with pytest.raises(StashOverflowError):
            stash.serialize(pad_to_blocks=2, block_size=8)

    def test_serialize_rejects_oversized_value(self):
        stash = Stash()
        stash.put(1, 0, b"x" * 32)
        with pytest.raises(ValueError):
            stash.serialize(pad_to_blocks=4, block_size=16)
