"""Tests for per-bucket metadata (permutations, valid bits, versions)."""

import random

import pytest

from repro.oram.metadata import BucketMeta, MetadataTable, SlotInfo


@pytest.fixture
def table():
    return MetadataTable(num_buckets=15, z_real=4, s_dummies=6, rng=random.Random(2))


class TestBucketLayout:
    def test_fresh_bucket_has_all_slots(self, table):
        meta = table.bucket(0)
        assert len(meta.slots) == 10
        assert meta.version == 0
        assert meta.reads_since_write == 0

    def test_fresh_bucket_is_all_dummies(self, table):
        meta = table.bucket(3)
        assert meta.real_block_ids() == []
        assert len(meta.valid_dummy_slots()) == 10

    def test_out_of_range_bucket_rejected(self, table):
        with pytest.raises(ValueError):
            table.bucket(15)

    def test_rewrite_installs_contents(self, table):
        meta = table.rewrite_bucket(1, [(10, b"a"), (11, b"b")])
        assert sorted(meta.real_block_ids()) == [10, 11]
        assert meta.version == 1
        assert meta.reads_since_write == 0

    def test_rewrite_rejects_overflow(self, table):
        contents = [(i, b"x") for i in range(5)]
        with pytest.raises(ValueError):
            table.rewrite_bucket(1, contents)

    def test_rewrite_shuffles_slot_positions(self):
        # With a non-trivial RNG the block does not always land in slot 0.
        positions = set()
        for seed in range(10):
            table = MetadataTable(3, 2, 2, rng=random.Random(seed))
            meta = table.rewrite_bucket(0, [(1, b"v")])
            positions.add(meta.slot_of_block(1))
        assert len(positions) > 1

    def test_versions_increase_monotonically(self, table):
        table.rewrite_bucket(2, [])
        table.rewrite_bucket(2, [(1, b"v")])
        assert table.bucket(2).version == 2


class TestSlotAccounting:
    def test_slot_of_block_finds_valid_slot(self, table):
        table.rewrite_bucket(0, [(42, b"v")])
        idx = table.bucket(0).slot_of_block(42)
        assert idx is not None
        assert table.bucket(0).slots[idx].block_id == 42

    def test_invalidate_marks_slot(self, table):
        table.rewrite_bucket(0, [(42, b"v")])
        meta = table.bucket(0)
        idx = meta.slot_of_block(42)
        meta.invalidate(idx)
        assert meta.slot_of_block(42) is None

    def test_double_invalidate_rejected(self, table):
        meta = table.bucket(0)
        meta.invalidate(0)
        with pytest.raises(ValueError):
            meta.invalidate(0)

    def test_needs_reshuffle_after_s_reads(self, table):
        meta = table.bucket(0)
        meta.reads_since_write = 6
        assert meta.needs_reshuffle(s_dummies=6)
        meta.reads_since_write = 5
        assert not meta.needs_reshuffle(s_dummies=6)

    def test_valid_real_block_ids_excludes_invalidated(self, table):
        table.rewrite_bucket(0, [(1, b"a"), (2, b"b")])
        meta = table.bucket(0)
        meta.invalidate(meta.slot_of_block(1))
        assert meta.valid_real_block_ids() == [2]


class TestSerialization:
    def test_full_roundtrip(self, table):
        table.rewrite_bucket(0, [(1, b"a")])
        table.rewrite_bucket(7, [(2, b"b")])
        table.bucket(7).invalidate(table.bucket(7).slot_of_block(2))
        restored = MetadataTable.deserialize_full(table.serialize_full())
        assert restored.bucket(0).real_block_ids() == [1]
        assert restored.bucket(7).slot_of_block(2) is None
        assert restored.bucket(7).version == 1

    def test_delta_contains_only_dirty_buckets(self, table):
        table.rewrite_bucket(0, [(1, b"a")])
        table.clear_dirty()
        table.rewrite_bucket(3, [(2, b"b")])
        other = MetadataTable(15, 4, 6)
        applied = other.apply_delta(table.serialize_delta())
        assert applied == 1
        assert other.bucket(3).real_block_ids() == [2]
        assert other.bucket(0).real_block_ids() == []

    def test_valid_map_roundtrip(self, table):
        table.rewrite_bucket(0, [(1, b"a")])
        meta = table.bucket(0)
        meta.invalidate(0)
        blob = table.serialize_valid_map()
        other = MetadataTable(15, 4, 6)
        other.rewrite_bucket(0, [(1, b"a")])
        other.apply_valid_map(blob)
        assert other.bucket(0).slots[0].valid is False

    def test_bucket_row_roundtrip(self):
        meta = BucketMeta(bucket_id=3, slots=[SlotInfo(5, True), SlotInfo(None, False)],
                          reads_since_write=2, version=7)
        restored = BucketMeta.from_row(meta.to_row())
        assert restored.bucket_id == 3
        assert restored.version == 7
        assert restored.slots[0].block_id == 5
        assert restored.slots[1].valid is False

    def test_dirty_tracking_cleared(self, table):
        table.rewrite_bucket(0, [])
        assert table.dirty_buckets() == [0]
        table.clear_dirty()
        assert table.dirty_buckets() == []
