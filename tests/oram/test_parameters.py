"""Tests for Ring ORAM parameter derivation."""

import pytest

from repro.oram.parameters import (PUBLISHED_PARAMETERS, RingOramParameters,
                                   depth_for_blocks, derive_parameters, published_a_s)


class TestPublishedParameters:
    def test_paper_configuration_present(self):
        # The Obladi evaluation uses Z=100, S=196, A=168.
        assert PUBLISHED_PARAMETERS[100] == (168, 196)

    def test_published_a_s_exact_match(self):
        assert published_a_s(4) == (3, 6)
        assert published_a_s(16) == (20, 25)

    def test_interpolated_values_respect_invariants(self):
        for z in (5, 12, 40, 70, 130):
            a, s = published_a_s(z)
            assert 1 <= a <= 2 * z
            assert s >= a


class TestDepthDerivation:
    def test_depth_covers_blocks(self):
        for blocks in (10, 100, 1000, 100_000):
            for z in (4, 16, 100):
                depth = depth_for_blocks(blocks, z)
                assert z * (1 << depth) >= blocks

    def test_depth_is_minimal(self):
        depth = depth_for_blocks(1000, 16)
        assert 16 * (1 << (depth - 1)) < 1000

    def test_depth_at_least_one(self):
        assert depth_for_blocks(1, 100) >= 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            depth_for_blocks(0, 4)
        with pytest.raises(ValueError):
            depth_for_blocks(10, 0)


class TestRingOramParameters:
    def test_derived_parameters_consistent(self):
        params = derive_parameters(num_blocks=10_000, z_real=16)
        assert params.num_leaves == 1 << params.depth
        assert params.num_buckets == 2 * params.num_leaves - 1
        assert params.slots_per_bucket == params.z_real + params.s_dummies

    def test_explicit_overrides_win(self):
        params = derive_parameters(num_blocks=100, z_real=4, evict_rate=2, s_dummies=9)
        assert params.evict_rate == 2
        assert params.s_dummies == 9

    def test_stash_bound_default_is_multiple_of_z(self):
        params = derive_parameters(num_blocks=100, z_real=16)
        assert params.stash_bound >= 4 * 16

    def test_stash_bound_override(self):
        params = derive_parameters(num_blocks=100, z_real=4, max_stash_blocks=50)
        assert params.stash_bound == 50

    def test_physical_reads_per_access_is_path_length(self):
        params = derive_parameters(num_blocks=1000, z_real=8)
        assert params.physical_reads_per_access() == params.depth + 1

    def test_amortized_eviction_reads_positive(self):
        params = derive_parameters(num_blocks=1000, z_real=8)
        assert params.amortized_eviction_reads() > 0

    def test_describe_mentions_key_parameters(self):
        params = derive_parameters(num_blocks=1000, z_real=8)
        text = params.describe()
        assert "Z=8" in text and "N=1000" in text

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RingOramParameters(num_blocks=0, z_real=4, s_dummies=4, evict_rate=2, depth=3)
        with pytest.raises(ValueError):
            RingOramParameters(num_blocks=10, z_real=0, s_dummies=4, evict_rate=2, depth=3)
        with pytest.raises(ValueError):
            RingOramParameters(num_blocks=10, z_real=4, s_dummies=0, evict_rate=2, depth=3)
        with pytest.raises(ValueError):
            RingOramParameters(num_blocks=10, z_real=4, s_dummies=4, evict_rate=0, depth=3)
