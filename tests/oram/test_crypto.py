"""Tests for block sealing, authentication and padding."""

import pytest

from repro.oram.crypto import CipherSuite, IntegrityError, freshness_context


@pytest.fixture
def suite():
    return CipherSuite(key=b"k" * 32, block_size=64)


class TestPadding:
    def test_pad_produces_fixed_size(self, suite):
        assert len(suite.pad(b"hello")) == 64
        assert len(suite.pad(b"")) == 64

    def test_pad_unpad_roundtrip(self, suite):
        for payload in (b"", b"x", b"a" * 60):
            assert suite.unpad(suite.pad(payload)) == payload

    def test_pad_rejects_oversized_payload(self, suite):
        with pytest.raises(ValueError):
            suite.pad(b"x" * 61)

    def test_unpad_rejects_wrong_length(self, suite):
        with pytest.raises(ValueError):
            suite.unpad(b"short")

    def test_unpad_rejects_nonzero_tail(self, suite):
        """Regression: garbage past the payload must not unpad silently.

        ``unpad`` used to drop everything after the length header's payload,
        so a spliced or corrupted block decrypting to ``len || payload ||
        junk`` round-tripped as if well-formed.  Every pad byte must be zero.
        """
        padded = bytearray(suite.pad(b"hello"))
        padded[-1] = 0x5A                      # corrupt the last pad byte
        with pytest.raises(IntegrityError):
            suite.unpad(bytes(padded))

    def test_unpad_rejects_nonzero_byte_right_after_payload(self, suite):
        padded = bytearray(suite.pad(b"hi"))
        padded[4 + 2] = 0x01                   # first byte past the payload
        with pytest.raises(IntegrityError):
            suite.unpad(bytes(padded))

    def test_unpad_accepts_full_capacity_block(self, suite):
        """A payload filling the whole block has an empty tail to verify."""
        payload = b"z" * (suite.block_size - 4)
        assert suite.unpad(suite.pad(payload)) == payload

    def test_unpad_rejects_oversized_header(self, suite):
        padded = (b"\xff\xff\xff\xff").ljust(suite.block_size, b"\x00")
        with pytest.raises(IntegrityError):
            suite.unpad(padded)


class TestEncryption:
    def test_encrypt_decrypt_roundtrip(self, suite):
        blob = suite.encrypt(b"secret data")
        assert suite.decrypt(blob) == b"secret data"

    def test_ciphertexts_are_fixed_size(self, suite):
        assert len(suite.encrypt(b"a")) == suite.ciphertext_size
        assert len(suite.encrypt(b"a" * 50)) == suite.ciphertext_size

    def test_ciphertexts_are_randomised(self, suite):
        assert suite.encrypt(b"same") != suite.encrypt(b"same")

    def test_wrong_key_fails_authentication(self):
        a = CipherSuite(key=b"a" * 32, block_size=64)
        b = CipherSuite(key=b"b" * 32, block_size=64)
        with pytest.raises(IntegrityError):
            b.decrypt(a.encrypt(b"data"))

    def test_tampered_ciphertext_rejected(self, suite):
        blob = bytearray(suite.encrypt(b"data"))
        blob[20] ^= 0xFF
        with pytest.raises(IntegrityError):
            suite.decrypt(bytes(blob))

    def test_context_binding(self, suite):
        blob = suite.encrypt(b"data", context=freshness_context(1, 2, 3))
        assert suite.decrypt(blob, context=freshness_context(1, 2, 3)) == b"data"
        with pytest.raises(IntegrityError):
            suite.decrypt(blob, context=freshness_context(1, 2, 4))

    def test_unauthenticated_mode_skips_macs(self):
        suite = CipherSuite(key=b"k" * 32, block_size=64, authenticated=False)
        blob = suite.encrypt(b"data")
        assert suite.decrypt(blob) == b"data"
        assert len(blob) == suite.ciphertext_size

    def test_disabled_mode_only_pads(self):
        suite = CipherSuite(block_size=64, enabled=False)
        blob = suite.encrypt(b"data")
        assert len(blob) == 64
        assert suite.decrypt(blob) == b"data"

    def test_wrong_length_ciphertext_rejected(self, suite):
        with pytest.raises(IntegrityError):
            suite.decrypt(b"\x00" * (suite.ciphertext_size - 1))


class TestBlockSealing:
    def test_seal_open_real_block(self, suite):
        blob = suite.seal_block(42, b"value")
        block_id, value = suite.open_block(blob)
        assert block_id == 42
        assert value == b"value"

    def test_seal_open_dummy_block(self, suite):
        block_id, value = suite.open_block(suite.dummy_block())
        assert block_id is None
        assert value == b""

    def test_real_and_dummy_blocks_same_size(self, suite):
        real = suite.seal_block(7, b"payload")
        dummy = suite.dummy_block()
        assert len(real) == len(dummy)

    def test_sealed_block_bound_to_position(self, suite):
        ctx = freshness_context(bucket=3, version=1, slot=5)
        blob = suite.seal_block(9, b"v", ctx)
        with pytest.raises(IntegrityError):
            suite.open_block(blob, freshness_context(bucket=3, version=2, slot=5))

    def test_key_generated_when_missing(self):
        suite = CipherSuite(block_size=32)
        assert len(suite.key) == 32


class TestBatchedEncryption:
    """The ``*_many`` batch entry points must match their per-slot forms."""

    def test_encrypt_many_roundtrips_per_slot(self, suite):
        plaintexts = [b"", b"a"] + [b"payload-%d" % i for i in range(6)]
        blobs = suite.encrypt_many(plaintexts)
        assert len(blobs) == len(plaintexts)
        for blob, plaintext in zip(blobs, plaintexts):
            assert len(blob) == suite.ciphertext_size
            assert suite.decrypt(blob) == plaintext

    def test_decrypt_many_matches_per_slot_decrypt(self, suite):
        plaintexts = [b"block-%d" % i for i in range(5)]
        blobs = [suite.encrypt(p) for p in plaintexts]
        assert suite.decrypt_many(blobs) == plaintexts

    def test_batch_contexts_are_bound(self, suite):
        contexts = [freshness_context(1, 1, s) for s in range(4)]
        blobs = suite.encrypt_many([b"v%d" % s for s in range(4)], contexts)
        assert suite.decrypt_many(blobs, contexts) == [b"v0", b"v1", b"v2", b"v3"]
        wrong = contexts[:3] + [freshness_context(1, 2, 3)]
        with pytest.raises(IntegrityError):
            suite.decrypt_many(blobs, wrong)

    def test_decrypt_many_raises_at_first_bad_blob(self, suite):
        blobs = [suite.encrypt(b"x%d" % i) for i in range(3)]
        tampered = bytearray(blobs[1])
        tampered[15] ^= 0xFF
        blobs[1] = bytes(tampered)
        with pytest.raises(IntegrityError):
            suite.decrypt_many(blobs)

    def test_context_count_mismatch_rejected(self, suite):
        with pytest.raises(ValueError):
            suite.encrypt_many([b"a", b"b"], [b"only-one"])
        with pytest.raises(ValueError):
            suite.decrypt_many([suite.encrypt(b"a")], [b"c1", b"c2"])

    def test_empty_batch(self, suite):
        assert suite.encrypt_many([]) == []
        assert suite.decrypt_many([]) == []

    def test_batch_nonces_are_distinct(self, suite):
        blobs = suite.encrypt_many([b"same"] * 8)
        nonces = {blob[:suite._nonce_len] for blob in blobs}
        assert len(nonces) == 8

    def test_unauthenticated_batch_roundtrip(self):
        suite = CipherSuite(key=b"k" * 32, block_size=64, authenticated=False)
        plaintexts = [b"p%d" % i for i in range(4)]
        assert suite.decrypt_many(suite.encrypt_many(plaintexts)) == plaintexts

    def test_disabled_batch_only_pads(self):
        suite = CipherSuite(block_size=64, enabled=False)
        blobs = suite.encrypt_many([b"p1", b"p2"])
        assert all(len(blob) == 64 for blob in blobs)
        assert suite.decrypt_many(blobs) == [b"p1", b"p2"]

    def test_seal_open_blocks_roundtrip(self, suite):
        entries = [(7, b"v7", freshness_context(0, 1, 0)),
                   (None, b"", freshness_context(0, 1, 1)),
                   (0xFFFFFFFE, b"edge", freshness_context(0, 1, 2))]
        sealed = suite.seal_blocks(entries)
        opened = suite.open_blocks(sealed, [ctx for _, _, ctx in entries])
        assert opened == [(7, b"v7"), (None, b""), (0xFFFFFFFE, b"edge")]
        # Per-slot open_block agrees blob by blob.
        for blob, (bid, value, ctx) in zip(sealed, entries):
            assert suite.open_block(blob, ctx) == (bid, value)

    def test_seal_blocks_real_and_dummy_same_size(self, suite):
        sealed = suite.seal_blocks([(3, b"real", b""), (None, b"", b"")])
        assert len(sealed[0]) == len(sealed[1]) == suite.ciphertext_size


class TestFreshnessContext:
    def test_distinct_positions_distinct_contexts(self):
        contexts = {freshness_context(b, v, s) for b in range(3) for v in range(3)
                    for s in range(3)}
        assert len(contexts) == 27

    def test_context_is_deterministic(self):
        assert freshness_context(1, 2, 3) == freshness_context(1, 2, 3)
