"""Tests for block sealing, authentication and padding."""

import pytest

from repro.oram.crypto import CipherSuite, IntegrityError, freshness_context


@pytest.fixture
def suite():
    return CipherSuite(key=b"k" * 32, block_size=64)


class TestPadding:
    def test_pad_produces_fixed_size(self, suite):
        assert len(suite.pad(b"hello")) == 64
        assert len(suite.pad(b"")) == 64

    def test_pad_unpad_roundtrip(self, suite):
        for payload in (b"", b"x", b"a" * 60):
            assert suite.unpad(suite.pad(payload)) == payload

    def test_pad_rejects_oversized_payload(self, suite):
        with pytest.raises(ValueError):
            suite.pad(b"x" * 61)

    def test_unpad_rejects_wrong_length(self, suite):
        with pytest.raises(ValueError):
            suite.unpad(b"short")


class TestEncryption:
    def test_encrypt_decrypt_roundtrip(self, suite):
        blob = suite.encrypt(b"secret data")
        assert suite.decrypt(blob) == b"secret data"

    def test_ciphertexts_are_fixed_size(self, suite):
        assert len(suite.encrypt(b"a")) == suite.ciphertext_size
        assert len(suite.encrypt(b"a" * 50)) == suite.ciphertext_size

    def test_ciphertexts_are_randomised(self, suite):
        assert suite.encrypt(b"same") != suite.encrypt(b"same")

    def test_wrong_key_fails_authentication(self):
        a = CipherSuite(key=b"a" * 32, block_size=64)
        b = CipherSuite(key=b"b" * 32, block_size=64)
        with pytest.raises(IntegrityError):
            b.decrypt(a.encrypt(b"data"))

    def test_tampered_ciphertext_rejected(self, suite):
        blob = bytearray(suite.encrypt(b"data"))
        blob[20] ^= 0xFF
        with pytest.raises(IntegrityError):
            suite.decrypt(bytes(blob))

    def test_context_binding(self, suite):
        blob = suite.encrypt(b"data", context=freshness_context(1, 2, 3))
        assert suite.decrypt(blob, context=freshness_context(1, 2, 3)) == b"data"
        with pytest.raises(IntegrityError):
            suite.decrypt(blob, context=freshness_context(1, 2, 4))

    def test_unauthenticated_mode_skips_macs(self):
        suite = CipherSuite(key=b"k" * 32, block_size=64, authenticated=False)
        blob = suite.encrypt(b"data")
        assert suite.decrypt(blob) == b"data"
        assert len(blob) == suite.ciphertext_size

    def test_disabled_mode_only_pads(self):
        suite = CipherSuite(block_size=64, enabled=False)
        blob = suite.encrypt(b"data")
        assert len(blob) == 64
        assert suite.decrypt(blob) == b"data"

    def test_wrong_length_ciphertext_rejected(self, suite):
        with pytest.raises(IntegrityError):
            suite.decrypt(b"\x00" * (suite.ciphertext_size - 1))


class TestBlockSealing:
    def test_seal_open_real_block(self, suite):
        blob = suite.seal_block(42, b"value")
        block_id, value = suite.open_block(blob)
        assert block_id == 42
        assert value == b"value"

    def test_seal_open_dummy_block(self, suite):
        block_id, value = suite.open_block(suite.dummy_block())
        assert block_id is None
        assert value == b""

    def test_real_and_dummy_blocks_same_size(self, suite):
        real = suite.seal_block(7, b"payload")
        dummy = suite.dummy_block()
        assert len(real) == len(dummy)

    def test_sealed_block_bound_to_position(self, suite):
        ctx = freshness_context(bucket=3, version=1, slot=5)
        blob = suite.seal_block(9, b"v", ctx)
        with pytest.raises(IntegrityError):
            suite.open_block(blob, freshness_context(bucket=3, version=2, slot=5))

    def test_key_generated_when_missing(self):
        suite = CipherSuite(block_size=32)
        assert len(suite.key) == 32


class TestFreshnessContext:
    def test_distinct_positions_distinct_contexts(self):
        contexts = {freshness_context(b, v, s) for b in range(3) for v in range(3)
                    for s in range(3)}
        assert len(contexts) == 27

    def test_context_is_deterministic(self):
        assert freshness_context(1, 2, 3) == freshness_context(1, 2, 3)
