"""Tests for the position map."""

import random

import pytest

from repro.oram.position_map import PositionMap


@pytest.fixture
def pmap():
    return PositionMap(num_leaves=16, rng=random.Random(1))


class TestMapping:
    def test_lookup_unknown_block_is_none(self, pmap):
        assert pmap.lookup(5) is None

    def test_lookup_or_assign_creates_mapping(self, pmap):
        leaf = pmap.lookup_or_assign(5)
        assert 0 <= leaf < 16
        assert pmap.lookup(5) == leaf

    def test_lookup_or_assign_is_stable(self, pmap):
        assert pmap.lookup_or_assign(5) == pmap.lookup_or_assign(5)

    def test_remap_changes_leaf_eventually(self, pmap):
        pmap.lookup_or_assign(5)
        leaves = {pmap.remap(5) for _ in range(50)}
        assert len(leaves) > 1
        assert all(0 <= leaf < 16 for leaf in leaves)

    def test_remap_distribution_is_roughly_uniform(self):
        pmap = PositionMap(num_leaves=8, rng=random.Random(3))
        counts = [0] * 8
        for _ in range(4000):
            counts[pmap.remap(0)] += 1
        assert min(counts) > 300

    def test_set_forces_leaf(self, pmap):
        pmap.set(7, 3)
        assert pmap.lookup(7) == 3

    def test_set_rejects_out_of_range(self, pmap):
        with pytest.raises(ValueError):
            pmap.set(7, 16)

    def test_contains_and_len(self, pmap):
        pmap.lookup_or_assign(1)
        pmap.lookup_or_assign(2)
        assert 1 in pmap and 3 not in pmap
        assert len(pmap) == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            PositionMap(0)


class TestCheckpointing:
    def test_dirty_tracking(self, pmap):
        pmap.lookup_or_assign(1)
        pmap.remap(1)
        assert 1 in pmap.dirty_entries()
        pmap.clear_dirty()
        assert pmap.dirty_entries() == {}

    def test_full_serialisation_roundtrip(self, pmap):
        for block in range(10):
            pmap.lookup_or_assign(block)
        blob = pmap.serialize_full()
        restored = PositionMap.deserialize_full(blob)
        assert {b: restored.lookup(b) for b in range(10)} == \
               {b: pmap.lookup(b) for b in range(10)}

    def test_delta_applies_only_dirty_entries(self, pmap):
        pmap.lookup_or_assign(1)
        pmap.clear_dirty()
        pmap.set(2, 9)
        blob = pmap.serialize_delta()
        other = PositionMap(16)
        applied = other.apply_delta(blob)
        assert applied == 1
        assert other.lookup(2) == 9
        assert other.lookup(1) is None

    def test_delta_padding_fixes_entry_count(self, pmap):
        pmap.set(1, 2)
        short = pmap.serialize_delta(pad_to_entries=8)
        pmap.set(3, 4)
        pmap.set(5, 6)
        longer = pmap.serialize_delta(pad_to_entries=8)
        # Both deltas encode exactly 8 rows, so their sizes are very close
        # (the only variation is the digits of the leaf values).
        assert abs(len(short) - len(longer)) <= 8

    def test_delta_padding_overflow_rejected(self, pmap):
        pmap.set(1, 2)
        pmap.set(2, 2)
        with pytest.raises(ValueError):
            pmap.serialize_delta(pad_to_entries=1)

    def test_padded_delta_entries_are_ignored_on_apply(self, pmap):
        pmap.set(1, 2)
        blob = pmap.serialize_delta(pad_to_entries=4)
        other = PositionMap(16)
        assert other.apply_delta(blob) == 1
        assert len(other) == 1
