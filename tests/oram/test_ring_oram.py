"""Tests for the sequential Ring ORAM client."""

import random

import pytest

from repro.oram import path_math
from repro.oram.crypto import CipherSuite
from repro.oram.parameters import RingOramParameters
from repro.oram.ring_oram import OramAccess, OramOp, RingOram
from repro.sim.clock import SimClock
from repro.storage.memory import InMemoryStorageServer


def make_oram(seed=0, dummiless=False, depth=4, z=4, s=6, a=3, latency="dummy"):
    clock = SimClock()
    storage = InMemoryStorageServer(latency=latency, clock=clock)
    params = RingOramParameters(num_blocks=z << depth, z_real=z, s_dummies=s,
                                evict_rate=a, depth=depth, block_size=64)
    cipher = CipherSuite(block_size=params.block_size + 8)
    oram = RingOram(params, storage, cipher=cipher, clock=clock, seed=seed,
                    dummiless_writes=dummiless)
    return oram, storage


class TestBasicCorrectness:
    def test_read_of_unknown_block_returns_none(self):
        oram, _ = make_oram()
        assert oram.read(3) is None

    def test_write_then_read(self):
        oram, _ = make_oram()
        oram.write(1, b"hello")
        assert oram.read(1) == b"hello"

    def test_overwrite(self):
        oram, _ = make_oram()
        oram.write(1, b"v1")
        oram.write(1, b"v2")
        assert oram.read(1) == b"v2"

    def test_many_blocks_roundtrip(self):
        oram, _ = make_oram()
        expected = {}
        for block in range(20):
            value = f"value-{block}".encode()
            oram.write(block, value)
            expected[block] = value
        for block, value in expected.items():
            assert oram.read(block) == value, f"block {block}"

    def test_interleaved_reads_and_writes(self):
        oram, _ = make_oram(seed=3)
        rng = random.Random(5)
        reference = {}
        for step in range(150):
            block = rng.randrange(16)
            if rng.random() < 0.5 or block not in reference:
                value = f"{step}".encode()
                oram.write(block, value)
                reference[block] = value
            else:
                assert oram.read(block) == reference[block]

    def test_dummiless_writes_preserve_correctness(self):
        oram, _ = make_oram(seed=1, dummiless=True)
        rng = random.Random(9)
        reference = {}
        for step in range(150):
            block = rng.randrange(16)
            if rng.random() < 0.6 or block not in reference:
                value = f"d{step}".encode()
                oram.write(block, value)
                reference[block] = value
            else:
                assert oram.read(block) == reference[block]

    def test_bulk_load_roundtrip(self):
        oram, _ = make_oram(seed=2)
        data = {block: f"bulk-{block}".encode() for block in range(30)}
        oram.bulk_load(data)
        for block, value in data.items():
            assert oram.read(block) == value

    def test_access_requires_value_for_write(self):
        with pytest.raises(ValueError):
            OramAccess(OramOp.WRITE, 1)


class TestInvariants:
    def test_path_invariant_holds_after_accesses(self):
        oram, _ = make_oram(seed=4)
        for block in range(16):
            oram.write(block, bytes([block]))
        for _ in range(100):
            oram.read(random.Random(7).randrange(16))
        # Every mapped block is either in the stash or recorded in a bucket on
        # its assigned path.
        for block in range(16):
            leaf = oram.position_map.lookup(block)
            if leaf is None or block in oram.stash:
                continue
            on_path = []
            for bid in path_math.path_buckets(leaf, oram.params.depth):
                if block in oram.metadata.bucket(bid).valid_real_block_ids():
                    on_path.append(bid)
            assert on_path, f"block {block} not found on its path"

    def test_remap_after_every_access(self):
        oram, _ = make_oram(seed=6)
        oram.write(1, b"v")
        seen = set()
        for _ in range(20):
            oram.read(1)
            seen.add(oram.position_map.lookup(1))
        assert len(seen) > 1

    def test_eviction_counter_advances_every_a_accesses(self):
        oram, _ = make_oram(seed=1, a=3)
        for block in range(9):
            oram.write(block, b"v")
        assert oram.eviction_count == 3

    def test_stash_stays_bounded(self):
        oram, _ = make_oram(seed=8)
        rng = random.Random(3)
        for step in range(300):
            oram.write(rng.randrange(32), bytes([step % 250]))
        assert len(oram.stash) <= 4 * oram.params.z_real + oram.params.z_real

    def test_bucket_slots_never_read_twice_between_rewrites(self):
        oram, storage = make_oram(seed=5)
        for block in range(16):
            oram.write(block, bytes([block]))
        rng = random.Random(11)
        for _ in range(120):
            oram.read(rng.randrange(16))
        from repro.analysis.obliviousness import check_bucket_invariant
        assert check_bucket_invariant(storage.trace) == []

    def test_forget_tree_copy_removes_stale_entry(self):
        oram, _ = make_oram(seed=9)
        oram.write(1, b"v")
        # Force the block out of the stash into the tree.
        for block in range(2, 14):
            oram.write(block, bytes([block]))
        leaf = oram.position_map.lookup(1)
        holders_before = [bid for bid in path_math.path_buckets(leaf, oram.params.depth)
                          if 1 in oram.metadata.bucket(bid).real_block_ids()]
        if holders_before:
            oram.forget_tree_copy(1)
            holders_after = [bid for bid in path_math.path_buckets(leaf, oram.params.depth)
                             if 1 in oram.metadata.bucket(bid).valid_real_block_ids()]
            assert holders_after == []

    def test_forget_tree_copy_clears_copy_shadowed_by_consumed_slot(self):
        """Regression: a consumed (invalid) slot must not shadow the live copy.

        Invalidated slots keep their block id until their bucket is
        rewritten.  ``forget_tree_copy`` used to stop at the first slot whose
        id matched — so a consumed slot near the root (the root is on every
        path) hid the block's *valid* copy deeper on the path.  The missed
        copy would later be drained by an eviction and resurrect its stale
        value over the freshly written one: a lost update.
        """
        oram, _ = make_oram(seed=9, depth=3)
        leaf = 5
        path = path_math.path_buckets(leaf, oram.params.depth)
        oram.position_map._positions[1] = leaf
        # Consumed slot in the root still records block 1 ...
        root = oram.metadata.bucket(path[0])
        root.slots[0].block_id = 1
        root.slots[0].valid = False
        # ... while the live copy sits in the leaf-level bucket.
        tip = oram.metadata.bucket(path[-1])
        tip.slots[0].block_id = 1
        tip.slots[0].valid = True

        oram.forget_tree_copy(1)

        for bid in path:
            meta = oram.metadata.bucket(bid)
            assert all(slot.block_id != 1 for slot in meta.slots), bid

    def test_rewrite_after_forget_does_not_resurrect_stale_value(self):
        """End-to-end shape of the lost update the shadow bug caused.

        Drive the ORAM until block 1 has a valid tree copy, plant a consumed
        decoy slot for it in the root, overwrite the block, then force enough
        traffic that evictions drain the old copy's bucket.  The read must
        return the new value, never the resurrected old one.
        """
        oram, _ = make_oram(seed=21, dummiless=True, depth=3)
        oram.write(1, b"old")
        for block in range(2, 12):
            oram.write(block, bytes([block]))
        leaf = oram.position_map.lookup(1)
        path = path_math.path_buckets(leaf, oram.params.depth)
        holders = [bid for bid in path
                   if 1 in oram.metadata.bucket(bid).valid_real_block_ids()]
        if not holders or 1 in oram.stash:
            pytest.skip("seed did not evict block 1 into the tree")
        # Plant the decoy strictly above the live copy on the path.
        decoy_levels = [bid for bid in path
                        if path_math.bucket_level(bid)
                        < path_math.bucket_level(holders[0])]
        decoy = oram.metadata.bucket(decoy_levels[-1])
        free = [s for s in decoy.slots if s.block_id is None and not s.valid]
        if not free:
            free = [s for s in decoy.slots if s.block_id is None]
            free[0].valid = False
        free[0].block_id = 1

        oram.write(1, b"new")
        # The dummiless write moved block 1 to the stash (or an immediate
        # eviction already re-placed it).  Either way the old tree copy must
        # be gone: block 1 lives in exactly one place, or a later drain
        # would resurrect b"old".
        copies = [bid for bid in range(oram.params.num_buckets)
                  if 1 in oram.metadata.bucket(bid).valid_real_block_ids()]
        if 1 in oram.stash:
            assert copies == []
        else:
            assert len(copies) == 1
        rng = random.Random(13)
        for step in range(120):
            oram.write(rng.randrange(2, 12), bytes([step % 250]))
        assert oram.read(1) == b"new"


class TestPhysicalBehaviour:
    def test_path_read_touches_one_slot_per_level(self):
        oram, storage = make_oram(seed=0)
        oram.write(1, b"v")
        storage.trace.clear()
        before = oram.stats_physical_reads
        oram.read(1)
        path_reads = oram.stats_physical_reads - before
        # One slot per bucket on the path, plus any eviction/reshuffle reads.
        assert path_reads >= oram.params.depth + 1

    def test_shadow_paging_creates_new_versions(self):
        oram, storage = make_oram(seed=0)
        for block in range(12):
            oram.write(block, b"v")
        versions = set()
        for key in storage.keys():
            if key.startswith("oram/0/"):
                versions.add(key.split("/")[2])
        assert len(versions) >= 2   # the root has been rewritten at least twice

    def test_clock_advances_with_accesses(self):
        oram, _ = make_oram(seed=0, latency="server")
        start = oram.clock.now_ms
        oram.write(1, b"v")
        oram.read(1)
        assert oram.clock.now_ms > start

    def test_deterministic_given_seed(self):
        first, _ = make_oram(seed=123)
        second, _ = make_oram(seed=123)
        for block in range(10):
            first.write(block, bytes([block]))
            second.write(block, bytes([block]))
        assert first.position_map.serialize_full() == second.position_map.serialize_full()
        assert first.eviction_count == second.eviction_count
