"""Tests for the parallel-batch dependency model."""

import pytest

from repro.oram.dependency import (DependencyGraphBuilder, PhysicalRead,
                                   simulate_parallel_read_batch,
                                   simulate_parallel_write_batch,
                                   simulate_sequential_read_batch)
from repro.sim.latency import BACKENDS, CpuCostModel


def make_reads(n, buckets=None):
    buckets = buckets if buckets is not None else list(range(n))
    return [PhysicalRead(key=f"oram/{b}/v0/s/{i}", bucket_id=b, level=0)
            for i, b in enumerate(buckets)]


class TestGraphBuilder:
    def test_two_ops_per_read(self):
        builder = DependencyGraphBuilder(latency=BACKENDS["server"])
        ops = builder.build_read_ops(make_reads(5))
        assert len(ops) == 10

    def test_same_bucket_metadata_is_chained(self):
        builder = DependencyGraphBuilder(latency=BACKENDS["server"])
        ops = builder.build_read_ops(make_reads(3, buckets=[7, 7, 7]))
        meta_ops = [op for op in ops if op.tag.startswith("meta:")]
        chained = [op for op in meta_ops if op.deps]
        assert len(chained) == 2

    def test_different_buckets_not_chained(self):
        builder = DependencyGraphBuilder(latency=BACKENDS["server"])
        ops = builder.build_read_ops(make_reads(3, buckets=[1, 2, 3]))
        meta_ops = [op for op in ops if op.tag.startswith("meta:")]
        assert all(not op.deps for op in meta_ops)

    def test_fetch_depends_on_its_metadata(self):
        builder = DependencyGraphBuilder(latency=BACKENDS["server"])
        ops = builder.build_read_ops(make_reads(2))
        fetches = [op for op in ops if op.tag.startswith("fetch:")]
        assert all(len(op.deps) == 1 for op in fetches)

    def test_write_ops_one_per_bucket(self):
        builder = DependencyGraphBuilder(latency=BACKENDS["server"])
        ops = builder.build_write_ops({1: 10, 2: 10, 5: 10})
        assert len(ops) == 3
        assert all(not op.deps for op in ops)


class TestSimulatedSchedules:
    def test_parallel_beats_sequential_on_remote_backends(self):
        reads = make_reads(64, buckets=list(range(64)))
        for backend in ("server", "server_wan", "dynamo"):
            parallel = simulate_parallel_read_batch(reads, BACKENDS[backend], 128).makespan_ms
            sequential = simulate_sequential_read_batch(reads, BACKENDS[backend])
            assert parallel < sequential, backend

    def test_parallel_does_not_beat_sequential_on_dummy(self):
        # The zero-latency backend is CPU bound; coordination makes the
        # parallel executor no faster (paper Figure 10a).
        reads = make_reads(256, buckets=[i % 15 for i in range(256)])
        parallel = simulate_parallel_read_batch(reads, BACKENDS["dummy"], 128).makespan_ms
        sequential = simulate_sequential_read_batch(reads, BACKENDS["dummy"])
        assert parallel >= sequential * 0.9

    def test_speedup_grows_with_latency(self):
        reads = make_reads(200, buckets=[i % 63 for i in range(200)])
        speedups = {}
        for backend in ("server", "server_wan"):
            model = BACKENDS[backend]
            parallel = simulate_parallel_read_batch(reads, model, 256).makespan_ms
            sequential = simulate_sequential_read_batch(reads, model)
            speedups[backend] = sequential / parallel
        assert speedups["server_wan"] > speedups["server"]

    def test_crypto_cost_increases_makespan_when_cpu_bound(self):
        reads = make_reads(512, buckets=[i % 7 for i in range(512)])
        with_crypto = simulate_parallel_read_batch(reads, BACKENDS["dummy"], 64,
                                                   encrypted=True).makespan_ms
        without = simulate_parallel_read_batch(reads, BACKENDS["dummy"], 64,
                                               encrypted=False).makespan_ms
        assert with_crypto > without

    def test_dispatch_floor_limits_large_batches(self):
        model = BACKENDS["server"]
        small = simulate_parallel_read_batch(make_reads(10), model, 1024).makespan_ms
        large = simulate_parallel_read_batch(make_reads(1000), model, 1024).makespan_ms
        assert large > small
        assert large >= 1000 * model.dispatch_ms_per_request

    def test_write_batch_scales_with_slot_count(self):
        model = BACKENDS["server"]
        small = simulate_parallel_write_batch({1: 10}, model, 64).makespan_ms
        large = simulate_parallel_write_batch({i: 10 for i in range(100)}, model, 64).makespan_ms
        assert large > small

    def test_empty_batch_is_free(self):
        assert simulate_parallel_read_batch([], BACKENDS["server"], 8).makespan_ms == 0.0

    def test_dynamo_parallelism_capped(self):
        reads = make_reads(640, buckets=list(range(640)))
        dynamo = simulate_parallel_read_batch(reads, BACKENDS["dynamo"], 1024).makespan_ms
        server = simulate_parallel_read_batch(reads, BACKENDS["server"], 1024).makespan_ms
        assert dynamo > server
