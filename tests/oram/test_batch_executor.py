"""Tests for the epoch-based parallel ORAM executor."""

import random

import pytest

from repro.oram.batch_executor import EpochBatchExecutor
from repro.oram.crypto import CipherSuite
from repro.oram.parameters import RingOramParameters
from repro.oram.ring_oram import RingOram
from repro.sim.clock import SimClock
from repro.storage.backend import StorageOp
from repro.storage.memory import InMemoryStorageServer


def make_executor(seed=0, backend="server", buffer_writes=True, depth=4, z=4, s=6, a=3,
                  parallelism=64):
    clock = SimClock()
    storage = InMemoryStorageServer(latency=backend, clock=clock, charge_latency=False)
    params = RingOramParameters(num_blocks=z << depth, z_real=z, s_dummies=s,
                                evict_rate=a, depth=depth, block_size=64)
    oram = RingOram(params, storage, cipher=CipherSuite(block_size=72), clock=clock,
                    seed=seed, dummiless_writes=True)
    executor = EpochBatchExecutor(oram, latency=backend, parallelism=parallelism,
                                  buffer_writes=buffer_writes)
    return executor, oram, storage


class TestCorrectness:
    def test_write_then_read_across_epochs(self):
        executor, _, _ = make_executor()
        executor.begin_epoch()
        executor.execute_write_batch({1: b"alpha", 2: b"beta"})
        executor.flush_epoch()
        executor.begin_epoch()
        values = executor.execute_read_batch([1, 2], batch_size=4)
        executor.flush_epoch()
        assert values[1] == b"alpha"
        assert values[2] == b"beta"

    def test_read_of_unknown_block_is_none(self):
        executor, _, _ = make_executor()
        executor.begin_epoch()
        values = executor.execute_read_batch([9], batch_size=2)
        executor.flush_epoch()
        assert values[9] is None

    def test_padding_entries_do_not_produce_results(self):
        executor, _, _ = make_executor()
        executor.begin_epoch()
        values = executor.execute_read_batch([1], batch_size=8)
        executor.flush_epoch()
        assert set(values) == {1}

    def test_multi_epoch_random_workload_matches_reference(self):
        executor, _, _ = make_executor(seed=3)
        rng = random.Random(17)
        reference = {}
        for _epoch in range(6):
            executor.begin_epoch()
            reads = [rng.randrange(20) for _ in range(6)]
            values = executor.execute_read_batch(reads, batch_size=8)
            for block in reads:
                assert values[block] == reference.get(block), f"block {block}"
            writes = {rng.randrange(20): f"e{_epoch}-{i}".encode() for i in range(4)}
            executor.execute_write_batch(writes)
            reference.update(writes)
            executor.flush_epoch()

    def test_abort_epoch_discards_buffered_bucket_writes(self):
        # Epoch abort drops the buffered bucket rewrites so nothing from the
        # aborted epoch reaches the untrusted store; rolling the *proxy* state
        # back is the recovery manager's job (the proxy is rebuilt from its
        # checkpoint after a crash).
        executor, _, storage = make_executor()
        executor.begin_epoch()
        executor.execute_write_batch({i: b"will-vanish" for i in range(6)})
        assert executor.pending_bucket_writes() > 0
        executor.abort_epoch()
        assert executor.pending_bucket_writes() == 0
        assert storage.stats_writes == 0

    def test_begin_epoch_requires_flush(self):
        executor, _, _ = make_executor()
        executor.begin_epoch()
        # Enough writes to trigger an eviction and buffer bucket rewrites.
        executor.execute_write_batch({i: b"x" for i in range(6)})
        assert executor.pending_bucket_writes() > 0
        with pytest.raises(RuntimeError):
            executor.begin_epoch()

    def test_stash_hits_served_without_physical_reads(self):
        executor, oram, _ = make_executor()
        executor.begin_epoch()
        executor.execute_write_batch({1: b"cached"})
        executor.flush_epoch()
        # If the block is still in the stash after the flush (mapped there by
        # the dummiless write), a read must not issue new path requests.
        if 1 in oram.stash:
            executor.begin_epoch()
            before = executor.lifetime_stats.physical_reads
            values = executor.execute_read_batch([1], batch_size=1)
            assert values[1] == b"cached"
            assert executor.lifetime_stats.physical_reads == before
            executor.flush_epoch()


class TestDeferredWrites:
    def test_no_storage_writes_before_flush(self):
        executor, _, storage = make_executor()
        executor.begin_epoch()
        executor.execute_read_batch([1, 2, 3], batch_size=8)
        executor.execute_write_batch({5: b"x"})
        writes_before_flush = storage.stats_writes
        executor.flush_epoch()
        assert storage.stats_writes > writes_before_flush
        assert writes_before_flush == 0

    def test_write_deduplication_within_epoch(self):
        executor, oram, _ = make_executor(a=2)
        executor.begin_epoch()
        # Enough traffic that the root is rewritten by several evictions.
        executor.execute_read_batch(list(range(12)), batch_size=12)
        executor.execute_write_batch({i: bytes([i]) for i in range(8)})
        saved = executor.stats.buffered_bucket_writes_saved
        pending = executor.pending_bucket_writes()
        executor.flush_epoch()
        assert saved > 0
        assert pending < executor.stats.evictions * (oram.params.depth + 1)

    def test_immediate_mode_writes_during_epoch(self):
        executor, _, storage = make_executor(buffer_writes=False)
        executor.begin_epoch()
        executor.execute_read_batch(list(range(8)), batch_size=8)
        assert storage.stats_writes > 0
        executor.flush_epoch()

    def test_buffered_mode_faster_than_immediate(self):
        buffered, oram_b, _ = make_executor(backend="server_wan", buffer_writes=True)
        immediate, oram_i, _ = make_executor(backend="server_wan", buffer_writes=False)
        for executor, oram in ((buffered, oram_b), (immediate, oram_i)):
            executor.begin_epoch()
            for _ in range(4):
                executor.execute_read_batch(list(range(10)), batch_size=10)
            executor.flush_epoch()
        assert oram_b.clock.now_ms < oram_i.clock.now_ms

    def test_flush_returns_elapsed_and_clears_state(self):
        executor, _, _ = make_executor()
        executor.begin_epoch()
        executor.execute_write_batch({1: b"x", 2: b"y"})
        elapsed = executor.flush_epoch()
        assert elapsed >= 0.0
        assert executor.pending_bucket_writes() == 0


class TestAdversaryView:
    def test_trace_shows_fixed_read_batch_size(self):
        executor, _, storage = make_executor()
        executor.begin_epoch()
        executor.execute_read_batch([1], batch_size=16)
        executor.flush_epoch()
        read_batches = [(kind, size) for kind, size in storage.trace.batch_shape()
                        if kind == "read"]
        assert read_batches[0] == ("read", 16)

    def test_reads_precede_writes_within_epoch(self):
        executor, _, storage = make_executor()
        executor.begin_epoch()
        executor.execute_read_batch(list(range(6)), batch_size=8)
        executor.execute_write_batch({1: b"x"})
        executor.flush_epoch()
        events = [e for e in storage.trace.events if e.key.startswith("oram/")]
        first_write_index = next(i for i, e in enumerate(events) if e.op == StorageOp.WRITE)
        assert all(e.op == StorageOp.READ for e in events[:first_write_index])
        assert all(e.op == StorageOp.WRITE for e in events[first_write_index:])

    def test_no_physical_key_read_twice_per_epoch(self):
        executor, _, storage = make_executor(seed=2)
        executor.begin_epoch()
        executor.execute_read_batch(list(range(10)), batch_size=10)
        executor.execute_read_batch(list(range(10)), batch_size=10)
        executor.flush_epoch()
        reads = [e.key for e in storage.trace.events
                 if e.op == StorageOp.READ and e.key.startswith("oram/")]
        assert len(reads) == len(set(reads))

    def test_clock_advances_more_on_wan(self):
        lan, oram_lan, _ = make_executor(backend="server")
        wan, oram_wan, _ = make_executor(backend="server_wan")
        for executor in (lan, wan):
            executor.begin_epoch()
            executor.execute_read_batch(list(range(8)), batch_size=8)
            executor.flush_epoch()
        assert oram_wan.clock.now_ms > oram_lan.clock.now_ms
