"""Tests for the backend latency models and CPU cost model."""

import pytest

from repro.sim.latency import (BACKENDS, CpuCostModel, LatencyModel, NetworkConditions,
                               get_latency_model, wan_variant)


class TestBackendCatalogue:
    def test_all_four_paper_backends_exist(self):
        assert set(BACKENDS) == {"dummy", "server", "server_wan", "dynamo"}

    def test_dummy_has_zero_round_trip(self):
        assert BACKENDS["dummy"].read_rtt_ms == 0.0
        assert BACKENDS["dummy"].write_rtt_ms == 0.0

    def test_server_matches_paper_ping(self):
        assert BACKENDS["server"].read_rtt_ms == pytest.approx(0.3)

    def test_wan_matches_paper_ping(self):
        assert BACKENDS["server_wan"].read_rtt_ms == pytest.approx(10.0)

    def test_dynamo_writes_slower_than_reads(self):
        dynamo = BACKENDS["dynamo"]
        assert dynamo.write_rtt_ms > dynamo.read_rtt_ms

    def test_dynamo_has_smallest_parallelism_cap(self):
        caps = {name: model.max_parallel_requests for name, model in BACKENDS.items()}
        assert caps["dynamo"] == min(caps.values())

    def test_latency_ordering_matches_paper(self):
        assert (BACKENDS["dummy"].read_rtt_ms < BACKENDS["server"].read_rtt_ms
                < BACKENDS["dynamo"].read_rtt_ms < BACKENDS["server_wan"].read_rtt_ms)


class TestLatencyModel:
    def test_rtt_selects_read_or_write(self):
        model = LatencyModel(name="x", read_rtt_ms=1.0, write_rtt_ms=3.0)
        assert model.rtt_ms(is_write=False) == pytest.approx(1.0)
        assert model.rtt_ms(is_write=True) == pytest.approx(3.0)

    def test_effective_parallelism_applies_both_caps(self):
        model = LatencyModel(name="x", read_rtt_ms=1.0, write_rtt_ms=1.0,
                             max_parallel_requests=8)
        assert model.effective_parallelism(64) == 8
        assert model.effective_parallelism(4) == 4

    def test_effective_parallelism_is_at_least_one(self):
        model = LatencyModel(name="x", read_rtt_ms=1.0, write_rtt_ms=1.0,
                             max_parallel_requests=8)
        assert model.effective_parallelism(0) == 1


class TestGetLatencyModel:
    def test_resolves_by_name(self):
        assert get_latency_model("server").name == "server"

    def test_passes_through_model_instances(self):
        model = BACKENDS["dynamo"]
        assert get_latency_model(model) is model

    def test_unknown_name_raises_with_valid_names(self):
        with pytest.raises(KeyError) as err:
            get_latency_model("s3")
        assert "server" in str(err.value)


class TestWanVariant:
    def test_adds_extra_round_trip(self):
        base = BACKENDS["server"]
        wan = wan_variant(base, extra_rtt_ms=9.7)
        assert wan.read_rtt_ms == pytest.approx(base.read_rtt_ms + 9.7)
        assert wan.write_rtt_ms == pytest.approx(base.write_rtt_ms + 9.7)

    def test_preserves_other_fields(self):
        base = BACKENDS["dynamo"]
        wan = wan_variant(base, extra_rtt_ms=5.0)
        assert wan.max_parallel_requests == base.max_parallel_requests
        assert wan.dispatch_ms_per_request == base.dispatch_ms_per_request

    def test_network_conditions_caches_resolution(self):
        overlay = NetworkConditions(base=BACKENDS["server"], extra_rtt_ms=1.0)
        assert overlay.resolve() is overlay.resolve()


class TestCpuCostModel:
    def test_sequential_cost_includes_crypto_when_encrypted(self):
        cm = CpuCostModel()
        assert cm.sequential_block_cost_ms(True) > cm.sequential_block_cost_ms(False)

    def test_parallel_cost_adds_coordination(self):
        cm = CpuCostModel()
        assert cm.parallel_block_cost_ms(True) > cm.sequential_block_cost_ms(True)

    def test_costs_are_positive(self):
        cm = CpuCostModel()
        assert cm.sequential_block_cost_ms(False) > 0
        assert cm.parallel_block_cost_ms(False) > 0


class TestLinkLatencyModels:
    def test_homogeneous_links_reuse_the_base_model(self):
        from repro.sim.latency import link_latency_models
        models = link_latency_models("server", 4)
        assert len(models) == 4
        assert all(model is BACKENDS["server"] for model in models)

    def test_per_link_extra_rtt_and_padding(self):
        from repro.sim.latency import link_latency_models
        models = link_latency_models("server", 3, link_extra_rtt_ms=(2.0,))
        assert models[0].read_rtt_ms == pytest.approx(2.3)
        assert models[0].name == "server_s0"
        # Links beyond the provided sequence fall back to the base model.
        assert models[1] is BACKENDS["server"]
        assert models[2] is BACKENDS["server"]
