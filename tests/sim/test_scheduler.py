"""Tests for the parallel list scheduler."""

import pytest

from repro.sim.scheduler import ParallelScheduler, ScheduledOp, build_ops, serial_duration_ms


class TestBasicScheduling:
    def test_empty_schedule_has_zero_makespan(self):
        result = ParallelScheduler(4).schedule([])
        assert result.makespan_ms == 0.0
        assert result.finish_times == {}

    def test_single_op(self):
        result = ParallelScheduler(1).schedule([ScheduledOp(0, 5.0)])
        assert result.makespan_ms == pytest.approx(5.0)

    def test_independent_ops_run_in_parallel(self):
        ops = build_ops([2.0, 2.0, 2.0, 2.0])
        result = ParallelScheduler(4).schedule(ops)
        assert result.makespan_ms == pytest.approx(2.0)

    def test_parallelism_cap_forces_waves(self):
        ops = build_ops([2.0] * 4)
        result = ParallelScheduler(2).schedule(ops)
        assert result.makespan_ms == pytest.approx(4.0)

    def test_serial_scheduler_sums_durations(self):
        ops = build_ops([1.0, 2.0, 3.0])
        result = ParallelScheduler(1).schedule(ops)
        assert result.makespan_ms == pytest.approx(6.0)
        assert result.makespan_ms == pytest.approx(serial_duration_ms(ops))

    def test_start_offset_shifts_everything(self):
        ops = build_ops([1.0, 1.0])
        result = ParallelScheduler(2).schedule(ops, start_ms=10.0)
        assert result.makespan_ms == pytest.approx(11.0)


class TestDependencies:
    def test_chain_is_serialised(self):
        ops = build_ops([1.0, 1.0, 1.0], deps=[[], [0], [1]])
        result = ParallelScheduler(8).schedule(ops)
        assert result.makespan_ms == pytest.approx(3.0)

    def test_diamond_dependency(self):
        # 0 -> (1, 2) -> 3
        ops = build_ops([1.0, 2.0, 3.0, 1.0], deps=[[], [0], [0], [1, 2]])
        result = ParallelScheduler(8).schedule(ops)
        assert result.makespan_ms == pytest.approx(1.0 + 3.0 + 1.0)

    def test_dependent_op_waits_even_with_free_workers(self):
        ops = build_ops([5.0, 1.0], deps=[[], [0]])
        result = ParallelScheduler(8).schedule(ops)
        assert result.finish_times[1] == pytest.approx(6.0)

    def test_critical_path_reported(self):
        ops = build_ops([1.0, 1.0, 1.0], deps=[[], [0], [1]])
        result = ParallelScheduler(8).schedule(ops)
        assert result.critical_path_ms == pytest.approx(3.0)

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError):
            ParallelScheduler(2).schedule([ScheduledOp(0, 1.0, deps=(99,))])

    def test_cycle_detected(self):
        ops = [ScheduledOp(0, 1.0, deps=(1,)), ScheduledOp(1, 1.0, deps=(0,))]
        with pytest.raises(ValueError):
            ParallelScheduler(2).schedule(ops)

    def test_duplicate_ids_rejected(self):
        ops = [ScheduledOp(0, 1.0), ScheduledOp(0, 2.0)]
        with pytest.raises(ValueError):
            ParallelScheduler(2).schedule(ops)


class TestDeterminismAndSpeedup:
    def test_schedule_is_deterministic(self):
        ops = build_ops([1.0, 3.0, 2.0, 0.5, 4.0], deps=[[], [0], [0], [2], []])
        first = ParallelScheduler(2).schedule(ops)
        second = ParallelScheduler(2).schedule(ops)
        assert first.finish_times == second.finish_times

    def test_parallel_speedup_reported(self):
        ops = build_ops([2.0] * 8)
        result = ParallelScheduler(4).schedule(ops)
        assert result.parallel_speedup == pytest.approx(4.0)

    def test_more_workers_never_slower(self):
        ops = build_ops([1.0, 2.0, 1.5, 3.0, 0.5, 2.5], deps=[[], [], [0], [1], [2], []])
        narrow = ParallelScheduler(1).schedule(ops).makespan_ms
        wide = ParallelScheduler(4).schedule(ops).makespan_ms
        assert wide <= narrow

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ScheduledOp(0, -1.0)

    def test_zero_parallelism_rejected(self):
        with pytest.raises(ValueError):
            ParallelScheduler(0)


class TestBuildOps:
    def test_build_ops_assigns_sequential_ids(self):
        ops = build_ops([1.0, 2.0])
        assert [op.op_id for op in ops] == [0, 1]

    def test_build_ops_attaches_tags(self):
        ops = build_ops([1.0], tags=["fetch:root"])
        assert ops[0].tag == "fetch:root"
