"""Tests for the simulated clock."""

import pytest

from repro.sim.clock import SimClock


class TestSimClockBasics:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now_ms == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(12.5).now_ms == 12.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_time_forward(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.advance(2.5)
        assert clock.now_ms == pytest.approx(5.5)

    def test_advance_returns_new_time(self):
        clock = SimClock(1.0)
        assert clock.advance(2.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_now_s_is_milliseconds_over_1000(self):
        clock = SimClock(2500.0)
        assert clock.now_s == pytest.approx(2.5)


class TestAdvanceTo:
    def test_advance_to_later_time(self):
        clock = SimClock(5.0)
        clock.advance_to(9.0)
        assert clock.now_ms == pytest.approx(9.0)

    def test_advance_to_earlier_time_is_noop(self):
        clock = SimClock(5.0)
        clock.advance_to(3.0)
        assert clock.now_ms == pytest.approx(5.0)

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(5.0)
        before = clock.total_advances
        clock.advance_to(5.0)
        assert clock.now_ms == pytest.approx(5.0)
        assert clock.total_advances == before


class TestForkAndCounters:
    def test_fork_starts_at_current_time(self):
        clock = SimClock()
        clock.advance(7.0)
        fork = clock.fork()
        assert fork.now_ms == pytest.approx(7.0)

    def test_fork_is_independent(self):
        clock = SimClock()
        fork = clock.fork()
        fork.advance(10.0)
        assert clock.now_ms == 0.0

    def test_total_advances_counts_operations(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(1.0)
        clock.advance_to(10.0)
        assert clock.total_advances == 3
