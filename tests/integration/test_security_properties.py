"""Integration tests for Obladi's security properties.

These are the empirical counterparts of the paper's security lemmas: the
adversary-visible trace must be statistically independent of the logical
workload, the Ring ORAM invariants must hold end to end, and the epoch shape
must be a function of the configuration only.
"""

import random

import pytest

from repro.analysis.obliviousness import (check_bucket_invariant, chi_square_uniformity,
                                          epoch_batch_pattern, leaf_access_counts,
                                          trace_similarity)
from repro.core.client import Read, ReadMany, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy


def build_proxy(seed=11):
    config = ObladiConfig(
        oram=RingOramConfig(num_blocks=256, z_real=4, block_size=128),
        read_batches=2, read_batch_size=10, write_batch_size=10,
        backend="server", durability=False, seed=seed,
    )
    proxy = ObladiProxy(config)
    proxy.load_initial_data({f"k{i}": f"value-{i}".encode() for i in range(64)})
    return proxy


def run_workload(proxy, key_picker, epochs=12, txns_per_epoch=6, writes=False, seed=5):
    rng = random.Random(seed)
    for _ in range(epochs):
        for _ in range(txns_per_epoch):
            key = key_picker(rng)

            def program(key=key):
                value = yield Read(key)
                if writes:
                    yield Write(key, (value or b"") + b"!")
                return value

            proxy.submit(program)
        proxy.run_epoch()


class TestWorkloadIndependence:
    def test_skewed_and_uniform_workloads_produce_similar_path_distributions(self):
        uniform_proxy = build_proxy(seed=11)
        skewed_proxy = build_proxy(seed=11)
        uniform_proxy.storage.trace.clear()
        skewed_proxy.storage.trace.clear()

        run_workload(uniform_proxy, lambda rng: f"k{rng.randrange(64)}")
        run_workload(skewed_proxy, lambda rng: f"k{rng.randrange(4)}")   # hot keys only

        depth = uniform_proxy.oram.params.depth
        distance = trace_similarity(uniform_proxy.storage.trace, skewed_proxy.storage.trace,
                                    depth)
        # The leaf-access distributions must stay statistically close even
        # though the logical workloads are radically different.
        assert distance < 0.2

    def test_paths_read_are_uniformly_distributed(self):
        proxy = build_proxy()
        proxy.storage.trace.clear()
        run_workload(proxy, lambda rng: f"k{rng.randrange(8)}", epochs=16)
        depth = proxy.oram.params.depth
        counts = leaf_access_counts(proxy.storage.trace, depth)
        _stat, p_value = chi_square_uniformity(counts, 1 << depth)
        assert p_value > 0.001

    def test_batch_pattern_is_configuration_shaped(self):
        proxy = build_proxy()
        proxy.storage.trace.clear()
        run_workload(proxy, lambda rng: f"k{rng.randrange(16)}", epochs=4)
        pattern = epoch_batch_pattern(proxy.storage.trace)
        # Each epoch shows exactly R read batches followed by one write batch.
        expected = (["read"] * proxy.config.read_batches + ["write"]) * 4
        assert pattern == expected

    def test_read_batches_always_padded_to_fixed_size(self):
        proxy = build_proxy()
        proxy.storage.trace.clear()
        # One tiny transaction per epoch: batches must still appear full-size.
        run_workload(proxy, lambda rng: "k1", epochs=3, txns_per_epoch=1)
        read_batches = [size for kind, size in proxy.storage.trace.batch_shape()
                        if kind == "read"]
        assert set(read_batches) == {proxy.config.read_batch_size}

    def test_bucket_invariant_never_violated(self):
        proxy = build_proxy()
        run_workload(proxy, lambda rng: f"k{rng.randrange(32)}", epochs=10, writes=True)
        assert check_bucket_invariant(proxy.storage.trace) == []

    def test_write_conflicts_do_not_change_adversary_view_shape(self):
        # Two runs: one with heavy write contention (many aborts), one with
        # none.  The adversary-visible batch pattern must be identical.
        calm = build_proxy(seed=21)
        contended = build_proxy(seed=21)
        calm.storage.trace.clear()
        contended.storage.trace.clear()

        def contended_txn():
            value = yield Read("k1")
            yield Write("k1", b"fight")
            return value

        def calm_txn(i):
            def program():
                value = yield Read(f"k{i}")
                yield Write(f"k{i}", b"peace")
                return value
            return program

        for epoch in range(4):
            for i in range(5):
                contended.submit(contended_txn)
                calm.submit(calm_txn(epoch * 5 + i))
            contended.run_epoch()
            calm.run_epoch()

        assert contended.stats_aborted > calm.stats_aborted
        assert epoch_batch_pattern(calm.storage.trace) == \
            epoch_batch_pattern(contended.storage.trace)
        sizes_calm = [s for _k, s in calm.storage.trace.batch_shape() if _k == "read"]
        sizes_contended = [s for _k, s in contended.storage.trace.batch_shape()
                           if _k == "read"]
        assert sizes_calm == sizes_contended
