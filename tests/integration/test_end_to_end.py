"""End-to-end integration tests: applications on Obladi and the baselines."""

import pytest

from repro.baseline.mysql_like import TwoPhaseLockingStore
from repro.baseline.nopriv import NoPrivProxy
from repro.concurrency.serializability import check_serializable
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy
from repro.workloads.driver import run_baseline_closed_loop, run_obladi_closed_loop
from repro.workloads.freehealth import FreeHealthConfig, FreeHealthWorkload
from repro.workloads.records import record_field
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload


def obladi_for(data, profile, seed=3):
    config = ObladiConfig.for_workload(
        profile, num_blocks=max(2 * len(data), 1024), backend="server",
        oram=RingOramConfig(num_blocks=max(2 * len(data), 1024), z_real=8, block_size=320),
        durability=False, read_batch_size=48, write_batch_size=64)
    proxy = ObladiProxy(config)
    proxy.load_initial_data(data)
    return proxy


class TestSmallBankEndToEnd:
    def test_smallbank_on_all_three_systems(self):
        workload_args = dict(num_accounts=80, seed=13)
        results = {}
        for system in ("obladi", "nopriv", "mysql"):
            workload = SmallBankWorkload(SmallBankConfig(**workload_args))
            data = workload.initial_data()
            if system == "obladi":
                proxy = obladi_for(data, "smallbank")
                run = run_obladi_closed_loop(proxy, workload.transaction_factory,
                                             total_transactions=40, clients=8)
                ok, cycle = check_serializable(proxy.committed_history)
            else:
                baseline = NoPrivProxy() if system == "nopriv" else TwoPhaseLockingStore()
                baseline.load_initial_data(data)
                run = run_baseline_closed_loop(baseline, workload.transaction_factory,
                                               total_transactions=40, clients=8)
                ok, cycle = check_serializable(baseline.committed_history)
            assert run.committed > 0, system
            assert ok, f"{system}: {cycle}"
            results[system] = run
        # Obladi pays for obliviousness: lower throughput, higher latency.
        assert results["obladi"].throughput_tps < results["nopriv"].throughput_tps
        assert results["obladi"].average_latency_ms > results["nopriv"].average_latency_ms

    def test_money_is_conserved_on_obladi(self):
        workload = SmallBankWorkload(SmallBankConfig(num_accounts=40, seed=7))
        data = workload.initial_data()
        total_before = sum(record_field(v, "balance", 0.0) for v in data.values())
        proxy = obladi_for(data, "smallbank")
        # send_payment and amalgamate move money around but never create it.
        factories = [workload.send_payment_program, workload.amalgamate_program]
        for i in range(12):
            proxy.submit(factories[i % 2]())
        proxy.run_until_drained()

        from repro.core.client import ReadMany

        def audit():
            keys = [workload.checking_key(a) for a in range(40)]
            keys += [workload.savings_key(a) for a in range(40)]
            rows = yield ReadMany(keys)
            return sum(record_field(v, "balance", 0.0) for v in rows.values())

        # The audit needs a bigger read batch than the default profile.
        audit_result = None
        for _attempt in range(3):
            result = proxy.execute_transaction(audit)
            if result.committed:
                audit_result = result.return_value
                break
        if audit_result is not None:
            assert audit_result == pytest.approx(total_before, abs=1.0)


class TestTPCCEndToEnd:
    def test_tpcc_runs_and_preserves_order_ids(self):
        workload = TPCCWorkload(TPCCConfig(warehouses=2, districts_per_warehouse=2,
                                           customers_per_district=4, items=40, seed=5))
        data = workload.initial_data()
        proxy = obladi_for(data, "tpcc")
        run = run_obladi_closed_loop(proxy, workload.transaction_factory,
                                     total_transactions=30, clients=6)
        assert run.committed > 0
        ok, cycle = check_serializable(proxy.committed_history)
        assert ok, cycle

    def test_new_order_ids_never_collide_under_contention(self):
        workload = TPCCWorkload(TPCCConfig(warehouses=1, districts_per_warehouse=1,
                                           customers_per_district=4, items=20, seed=9))
        data = workload.initial_data()
        proxy = obladi_for(data, "tpcc")
        order_ids = []
        for _ in range(4):
            for _ in range(3):
                proxy.submit(workload.new_order_program(warehouse=0, district=0))
            proxy.run_epoch()
        for result in proxy.results.values():
            if result.committed and isinstance(result.return_value, dict):
                order_ids.append(result.return_value["order"])
        assert len(order_ids) == len(set(order_ids)), "duplicate order ids handed out"


class TestFreeHealthEndToEnd:
    def test_freehealth_on_obladi(self):
        workload = FreeHealthWorkload(FreeHealthConfig(num_patients=40, num_drugs=15, seed=3))
        data = workload.initial_data()
        proxy = obladi_for(data, "freehealth")
        run = run_obladi_closed_loop(proxy, workload.transaction_factory,
                                     total_transactions=30, clients=6)
        assert run.committed > 0
        assert run.abort_rate < 0.5
        ok, cycle = check_serializable(proxy.committed_history)
        assert ok, cycle

    def test_episode_counter_monotone_under_contention(self):
        workload = FreeHealthWorkload(FreeHealthConfig(num_patients=5, num_drugs=10, seed=3))
        data = workload.initial_data()
        proxy = obladi_for(data, "freehealth")
        for _ in range(3):
            for _ in range(4):
                proxy.submit(workload.create_episode_program(patient=1))
            proxy.run_epoch()
        committed_episodes = [r.return_value["episode"] for r in proxy.results.values()
                              if r.committed and isinstance(r.return_value, dict)
                              and "episode" in r.return_value]
        assert len(committed_episodes) == len(set(committed_episodes))
