"""Integrity protection against a tampering storage server (Appendix A).

The evaluation assumes an honest-but-curious provider, but the implementation
carries the Appendix A machinery: every stored slot is authenticated and
bound to its (bucket, version, slot) position, so a malicious server that
modifies, swaps or replays ciphertexts is detected rather than silently
corrupting the database.
"""

import pytest

from repro.core.client import Read, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy
from repro.oram.crypto import IntegrityError


@pytest.fixture
def proxy():
    config = ObladiConfig(
        oram=RingOramConfig(num_blocks=128, z_real=4, block_size=128),
        read_batches=2, read_batch_size=8, write_batch_size=8,
        backend="server", durability=False, seed=13,
    )
    proxy = ObladiProxy(config)
    proxy.load_initial_data({f"k{i}": f"value-{i}".encode() for i in range(16)})
    return proxy


def oram_slot_keys(storage):
    return [key for key in storage.keys() if key.startswith("oram/")]


class TestTamperDetection:
    def test_flipped_ciphertext_bit_detected(self, proxy):
        # Corrupt every stored ORAM slot: whichever ones the next transaction
        # touches must fail authentication instead of decrypting to garbage.
        for key in oram_slot_keys(proxy.storage):
            blob = bytearray(proxy.storage.read(key))
            blob[len(blob) // 2] ^= 0xFF
            proxy.storage.write(key, bytes(blob))

        def program():
            value = yield Read("k1")
            return value

        proxy.submit(program)
        with pytest.raises(IntegrityError):
            proxy.run_epoch()

    def test_swapped_slots_detected(self, proxy):
        # Swapping two valid ciphertexts breaks the position binding even
        # though each blob individually carries a valid MAC.
        keys = oram_slot_keys(proxy.storage)
        a, b = keys[0], keys[-1]
        blob_a, blob_b = proxy.storage.read(a), proxy.storage.read(b)
        if blob_a == blob_b:
            pytest.skip("chose identical ciphertexts")
        proxy.storage.write(a, blob_b)
        proxy.storage.write(b, blob_a)

        def sweep():
            values = {}
            for i in range(8):
                values[i] = yield Read(f"k{i}")
            return values

        proxy.submit(sweep)
        try:
            proxy.run_epoch()
        except IntegrityError:
            return  # detected, as required
        # If the swapped slots were not touched this epoch, the values that
        # were read must still be correct.
        for result in proxy.results.values():
            if result.committed and isinstance(result.return_value, dict):
                for i, value in result.return_value.items():
                    if value is not None:
                        assert value == f"value-{i}".encode()

    def test_unauthenticated_mode_still_roundtrips(self):
        # With encryption disabled entirely (benchmark mode) the store holds
        # padded plaintext; functional behaviour is unchanged.
        config = ObladiConfig(
            oram=RingOramConfig(num_blocks=64, z_real=4, block_size=128),
            read_batches=2, read_batch_size=6, write_batch_size=6,
            backend="server", durability=False, encrypt=False, seed=3,
        )
        proxy = ObladiProxy(config)
        proxy.load_initial_data({"k": b"plain"})

        def rw():
            value = yield Read("k")
            yield Write("k", b"updated")
            return value

        result = proxy.execute_transaction(rw)
        assert result.committed and result.return_value == b"plain"

        def check():
            value = yield Read("k")
            return value

        assert proxy.execute_transaction(check).return_value == b"updated"
