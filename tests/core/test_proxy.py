"""Tests for the Obladi proxy: transactions, epochs, batching, commits."""

import pytest

from repro.concurrency.serializability import check_serializable
from repro.core.client import AbortRequest, Read, ReadMany, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.errors import ProxyCrashedError
from repro.core.proxy import ObladiProxy

from tests.conftest import read_program, read_write_program, write_program


class TestBasicTransactions:
    def test_read_initial_data(self, proxy):
        result = proxy.execute_transaction(read_program("k3"))
        assert result.committed
        assert result.return_value == b"value-3"

    def test_read_unknown_key_returns_none(self, proxy):
        result = proxy.execute_transaction(read_program("missing"))
        assert result.committed
        assert result.return_value is None

    def test_write_is_visible_to_later_epochs(self, proxy):
        proxy.execute_transaction(write_program("k1", b"updated"))
        result = proxy.execute_transaction(read_program("k1"))
        assert result.return_value == b"updated"

    def test_read_many_returns_dict(self, proxy):
        def program():
            values = yield ReadMany(["k1", "k2", "k5"])
            return values

        result = proxy.execute_transaction(program)
        assert result.return_value == {"k1": b"value-1", "k2": b"value-2",
                                       "k5": b"value-5"}

    def test_read_your_own_write_within_transaction(self, proxy):
        def program():
            yield Write("k1", b"mine")
            value = yield Read("k1")
            return value

        result = proxy.execute_transaction(program)
        assert result.return_value == b"mine"

    def test_explicit_abort(self, proxy):
        def program():
            yield Write("k1", b"should-not-commit")
            yield AbortRequest("changed my mind")
            return None

        result = proxy.execute_transaction(program)
        assert not result.committed
        assert result.abort_reason == "user"
        check = proxy.execute_transaction(read_program("k1"))
        assert check.return_value == b"value-1"

    def test_results_record_epoch_and_latency(self, proxy):
        result = proxy.execute_transaction(read_program("k1"))
        assert result.epoch >= 0
        assert result.latency_ms > 0

    def test_transaction_facade_round_trip(self, proxy):
        txn = proxy.transaction()
        assert txn.read("k2") == b"value-2"
        txn.write("k2", b"facade")
        txn.commit()
        assert proxy.transaction().read("k2") == b"facade"

    def test_submit_rejects_non_generator(self, proxy):
        with pytest.raises(TypeError):
            proxy.submit(lambda: 42)


class TestEpochSemantics:
    def test_transactions_in_same_epoch_see_uncommitted_writes(self, proxy):
        observed = {}

        def writer():
            yield Write("k9", b"fresh")
            return True

        def reader():
            value = yield Read("k9")
            observed["value"] = value
            return value

        proxy.submit(writer)
        proxy.submit(reader)
        proxy.run_epoch()
        # MVTSO lets the later-timestamped reader observe the uncommitted
        # write; both commit together at the epoch boundary.
        assert observed["value"] == b"fresh"

    def test_commit_notification_only_at_epoch_end(self, proxy):
        proxy.submit(write_program("k1", b"epoch-write"))
        assert proxy.results == {}
        summary = proxy.run_epoch()
        assert summary.committed >= 1
        assert len(proxy.results) == 1

    def test_epoch_counter_advances(self, proxy):
        first = proxy.run_epoch()
        second = proxy.run_epoch()
        assert second.epoch_id == first.epoch_id + 1

    def test_empty_epoch_commits_nothing(self, proxy):
        summary = proxy.run_epoch()
        assert summary.committed == 0
        assert summary.aborted == 0

    def test_epoch_duration_is_at_least_the_batch_intervals(self, proxy):
        proxy.submit(read_program("k1"))
        summary = proxy.run_epoch()
        assert summary.duration_ms >= proxy.config.epoch_length_ms * 0.99

    def test_run_until_drained(self, proxy):
        for i in range(5):
            proxy.submit(read_program(f"k{i}"))
        summaries = proxy.run_until_drained()
        assert proxy.pending_transactions() == 0
        assert sum(s.committed for s in summaries) == 5

    def test_dependent_reads_use_multiple_batches(self, proxy):
        def chained():
            first = yield Read("k0")
            second = yield Read("k" + str(len(first or b"") % 5 + 1))
            third = yield Read("k" + str(len(second or b"") % 5 + 2))
            return third

        result = proxy.execute_transaction(chained)
        assert result.committed

    def test_too_many_dependent_reads_abort_at_epoch_boundary(self, proxy):
        # The epoch has 3 read batches; a chain of 6 dependent fresh reads
        # cannot finish and must abort (paper: unfinished transactions are
        # aborted when the epoch closes).
        def chained():
            value = b""
            for i in range(6):
                value = yield Read(f"k{(len(value or b'') + i) % 30}")
            return value

        result = proxy.execute_transaction(chained)
        assert not result.committed
        assert result.abort_reason in ("epoch_boundary", "batch_full")

    def test_write_conflict_aborts_older_writer(self, proxy):
        # The younger transaction reads k1 before the older one writes it.
        def older():
            yield Read("k2")          # burn a timestamp slot; then write k1
            yield Write("k1", b"late")
            return True

        def younger():
            value = yield Read("k1")
            return value

        proxy.submit(older)
        proxy.submit(younger)
        proxy.run_epoch()
        results = sorted(proxy.results.values(), key=lambda r: r.txn_id)
        assert any(not r.committed and r.abort_reason == "write_conflict" for r in results)

    def test_cascading_abort_within_epoch(self, proxy):
        # t1 writes k5, blocks on an ORAM read (letting t2 observe the dirty
        # value), then aborts voluntarily; t2 must abort in cascade.
        def t1():
            yield Write("k5", b"dirty")
            yield Read("k20")
            yield AbortRequest()
            return None

        def t2():
            value = yield Read("k5")
            return value

        proxy.submit(t1)
        proxy.submit(t2)
        proxy.run_epoch()
        outcomes = {r.txn_id: r for r in proxy.results.values()}
        assert sum(1 for r in outcomes.values() if not r.committed) == 2
        reasons = {r.abort_reason for r in outcomes.values()}
        assert "cascade" in reasons


class TestSerializabilityAndDurability:
    def test_committed_history_is_serializable(self, proxy):
        import random
        rng = random.Random(3)
        for round_index in range(6):
            for _ in range(5):
                a, b = rng.randrange(30), rng.randrange(30)
                proxy.submit(read_write_program(f"k{a}", f"k{b}",
                                                f"r{round_index}-{a}-{b}".encode()))
            proxy.run_epoch()
        ok, cycle = check_serializable(proxy.committed_history)
        assert ok, f"serialization cycle: {cycle}"

    def test_throughput_and_latency_metrics(self, proxy):
        for i in range(4):
            proxy.submit(read_program(f"k{i}"))
        proxy.run_epoch()
        assert proxy.committed_count() == 4
        assert proxy.throughput_tps() > 0
        assert proxy.average_latency_ms() > 0

    def test_crashed_proxy_rejects_work(self, proxy):
        proxy.crash()
        with pytest.raises(ProxyCrashedError):
            proxy.submit(read_program("k1"))
        with pytest.raises(ProxyCrashedError):
            proxy.run_epoch()

    def test_write_batch_overflow_sheds_youngest_writers(self):
        config = ObladiConfig(
            oram=RingOramConfig(num_blocks=128, z_real=4, block_size=128),
            read_batches=2, read_batch_size=16, write_batch_size=4,
            backend="server", durability=False, seed=3,
        )
        proxy = ObladiProxy(config)
        # 6 transactions each writing 1 distinct key: only 4 fit the batch.
        for i in range(6):
            proxy.submit(write_program(f"w{i}", b"x"))
        summary = proxy.run_epoch()
        assert summary.committed == 4
        assert summary.aborted == 2
        reasons = {r.abort_reason for r in proxy.results.values() if not r.committed}
        assert reasons == {"batch_full"}

    def test_load_initial_data_checkpoints_when_durable(self, durable_proxy):
        # The fixture already loaded data; a checkpoint manifest must exist.
        assert durable_proxy.storage.contains("ckpt/manifest")
