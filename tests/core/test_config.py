"""Tests for Obladi configuration."""

import pytest

from repro.core.config import ObladiConfig, RingOramConfig


class TestRingOramConfig:
    def test_to_parameters_uses_published_optima(self):
        params = RingOramConfig(num_blocks=1000, z_real=16).to_parameters()
        assert params.evict_rate == 20
        assert params.s_dummies == 25

    def test_overrides_respected(self):
        params = RingOramConfig(num_blocks=100, z_real=4, evict_rate=2,
                                s_dummies=8, max_stash_blocks=64).to_parameters()
        assert params.evict_rate == 2
        assert params.s_dummies == 8
        assert params.stash_bound == 64


class TestObladiConfig:
    def test_defaults_are_valid(self):
        config = ObladiConfig()
        assert config.epoch_read_capacity == config.read_batches * config.read_batch_size

    def test_epoch_length(self):
        config = ObladiConfig(read_batches=4, batch_interval_ms=10.0)
        assert config.epoch_length_ms == pytest.approx(40.0)

    def test_position_delta_padding_covers_epoch_capacity(self):
        config = ObladiConfig(read_batches=2, read_batch_size=10, write_batch_size=5)
        assert config.position_delta_pad_entries == 25

    def test_with_backend_copies(self):
        config = ObladiConfig(backend="server")
        wan = config.with_backend("server_wan")
        assert wan.backend == "server_wan"
        assert config.backend == "server"
        assert wan.read_batches == config.read_batches

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ObladiConfig(read_batches=0)
        with pytest.raises(ValueError):
            ObladiConfig(read_batch_size=0)
        with pytest.raises(ValueError):
            ObladiConfig(batch_interval_ms=-1)
        with pytest.raises(ValueError):
            ObladiConfig(parallelism=0)
        with pytest.raises(ValueError):
            ObladiConfig(checkpoint_frequency=0)

    def test_describe_mentions_batching(self):
        text = ObladiConfig().describe()
        assert "b_read" in text and "backend" in text


class TestWorkloadPresets:
    def test_tpcc_preset_has_deep_epochs_and_large_write_batch(self):
        tpcc = ObladiConfig.for_workload("tpcc")
        smallbank = ObladiConfig.for_workload("smallbank")
        assert tpcc.read_batches > smallbank.read_batches
        assert tpcc.write_batch_size > smallbank.write_batch_size

    def test_freehealth_preset_is_read_mostly(self):
        freehealth = ObladiConfig.for_workload("freehealth")
        assert freehealth.write_batch_size < freehealth.epoch_read_capacity

    def test_preset_overrides(self):
        config = ObladiConfig.for_workload("ycsb", read_batch_size=123, backend="dynamo")
        assert config.read_batch_size == 123
        assert config.backend == "dynamo"

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            ObladiConfig.for_workload("olap")

    def test_custom_oram_config_accepted(self):
        oram = RingOramConfig(num_blocks=50, z_real=4)
        config = ObladiConfig.for_workload("smallbank", oram=oram)
        assert config.oram.num_blocks == 50


class TestProxyWorkersConfig:
    """Validation matrix for the proxy-tier knob (``proxy_workers``)."""

    def test_default_is_single_proxy(self):
        assert ObladiConfig().proxy_workers == 1

    @pytest.mark.parametrize("workers", [0, -1, -7])
    def test_non_positive_worker_counts_rejected(self, workers):
        with pytest.raises(ValueError):
            ObladiConfig(proxy_workers=workers)

    def test_error_message_documents_knob_interactions(self):
        """The rejection explains how proxy_workers relates to shards and
        storage_servers (it is orthogonal to both)."""
        with pytest.raises(ValueError) as excinfo:
            ObladiConfig(proxy_workers=0, shards=4, storage_servers=2)
        message = str(excinfo.value)
        assert "proxy worker" in message
        assert "shards" in message and "storage_servers" in message
        assert "independent" in message

    @pytest.mark.parametrize("workers,shards,servers", [
        (1, 1, 1), (4, 1, 1), (2, 4, 1), (4, 4, 4), (8, 2, 2), (3, 8, 4),
    ])
    def test_workers_orthogonal_to_data_topology(self, workers, shards, servers):
        config = ObladiConfig(proxy_workers=workers, shards=shards,
                              storage_servers=servers)
        assert config.proxy_workers == workers
        assert config.shards == shards
        assert config.storage_servers == servers

    def test_data_topology_validation_still_applies(self):
        with pytest.raises(ValueError):
            ObladiConfig(proxy_workers=4, shards=2, storage_servers=4)

    def test_describe_mentions_workers_only_when_sharded(self):
        assert "proxy_workers" not in ObladiConfig().describe()
        assert "proxy_workers=4" in ObladiConfig(proxy_workers=4).describe()

    def test_engine_config_round_trip(self):
        from repro.api import EngineConfig
        resolved = (EngineConfig().with_workload("smallbank")
                    .with_proxy_workers(4).to_obladi_config())
        assert resolved.proxy_workers == 4
        # None (the default) keeps the system default of 1.
        assert EngineConfig().to_obladi_config().proxy_workers == 1

    def test_engine_config_invalid_worker_count_surfaces_at_resolution(self):
        from repro.api import EngineConfig
        with pytest.raises(ValueError):
            EngineConfig().with_proxy_workers(0).to_obladi_config()
