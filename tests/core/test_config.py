"""Tests for Obladi configuration."""

import pytest

from repro.core.config import ObladiConfig, RingOramConfig


class TestRingOramConfig:
    def test_to_parameters_uses_published_optima(self):
        params = RingOramConfig(num_blocks=1000, z_real=16).to_parameters()
        assert params.evict_rate == 20
        assert params.s_dummies == 25

    def test_overrides_respected(self):
        params = RingOramConfig(num_blocks=100, z_real=4, evict_rate=2,
                                s_dummies=8, max_stash_blocks=64).to_parameters()
        assert params.evict_rate == 2
        assert params.s_dummies == 8
        assert params.stash_bound == 64


class TestObladiConfig:
    def test_defaults_are_valid(self):
        config = ObladiConfig()
        assert config.epoch_read_capacity == config.read_batches * config.read_batch_size

    def test_epoch_length(self):
        config = ObladiConfig(read_batches=4, batch_interval_ms=10.0)
        assert config.epoch_length_ms == pytest.approx(40.0)

    def test_position_delta_padding_covers_epoch_capacity(self):
        config = ObladiConfig(read_batches=2, read_batch_size=10, write_batch_size=5)
        assert config.position_delta_pad_entries == 25

    def test_with_backend_copies(self):
        config = ObladiConfig(backend="server")
        wan = config.with_backend("server_wan")
        assert wan.backend == "server_wan"
        assert config.backend == "server"
        assert wan.read_batches == config.read_batches

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ObladiConfig(read_batches=0)
        with pytest.raises(ValueError):
            ObladiConfig(read_batch_size=0)
        with pytest.raises(ValueError):
            ObladiConfig(batch_interval_ms=-1)
        with pytest.raises(ValueError):
            ObladiConfig(parallelism=0)
        with pytest.raises(ValueError):
            ObladiConfig(checkpoint_frequency=0)

    def test_describe_mentions_batching(self):
        text = ObladiConfig().describe()
        assert "b_read" in text and "backend" in text


class TestWorkloadPresets:
    def test_tpcc_preset_has_deep_epochs_and_large_write_batch(self):
        tpcc = ObladiConfig.for_workload("tpcc")
        smallbank = ObladiConfig.for_workload("smallbank")
        assert tpcc.read_batches > smallbank.read_batches
        assert tpcc.write_batch_size > smallbank.write_batch_size

    def test_freehealth_preset_is_read_mostly(self):
        freehealth = ObladiConfig.for_workload("freehealth")
        assert freehealth.write_batch_size < freehealth.epoch_read_capacity

    def test_preset_overrides(self):
        config = ObladiConfig.for_workload("ycsb", read_batch_size=123, backend="dynamo")
        assert config.read_batch_size == 123
        assert config.backend == "dynamo"

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            ObladiConfig.for_workload("olap")

    def test_custom_oram_config_accepted(self):
        oram = RingOramConfig(num_blocks=50, z_real=4)
        config = ObladiConfig.for_workload("smallbank", oram=oram)
        assert config.oram.num_blocks == 50
