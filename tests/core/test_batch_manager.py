"""Tests for read/write batch assembly."""

import pytest

from repro.core.batch_manager import BatchManager, ReadBatch
from repro.core.errors import BatchFullError


@pytest.fixture
def manager():
    return BatchManager(read_batches=3, read_batch_size=4, write_batch_size=4)


class TestReadScheduling:
    def test_reads_fill_current_batch_first(self, manager):
        assert manager.schedule_read("a") == 0
        assert manager.schedule_read("b") == 0

    def test_duplicate_key_shares_slot(self, manager):
        manager.schedule_read("a")
        index = manager.schedule_read("a")
        assert index == 0
        assert manager.stats_deduplicated == 1
        assert len(manager.peek_batch(0).keys) == 1

    def test_overflow_spills_to_next_batch(self, manager):
        for key in "abcd":
            manager.schedule_read(key)
        assert manager.schedule_read("e") == 1

    def test_epoch_capacity_exhaustion_raises(self, manager):
        for i in range(12):
            manager.schedule_read(f"k{i}")
        with pytest.raises(BatchFullError):
            manager.schedule_read("overflow")

    def test_dispatch_advances_current_batch(self, manager):
        manager.schedule_read("a")
        batch = manager.dispatch_next()
        assert batch.index == 0
        assert batch.dispatched
        assert manager.current_index == 1
        assert manager.schedule_read("b") == 1

    def test_dispatched_batch_rejects_new_keys(self, manager):
        batch = manager.dispatch_next()
        with pytest.raises(ValueError):
            batch.add("late")

    def test_dispatch_all_batches_then_none(self, manager):
        for _ in range(3):
            assert manager.dispatch_next() is not None
        assert manager.dispatch_next() is None
        assert manager.all_dispatched()

    def test_padding_counted_at_dispatch(self, manager):
        manager.schedule_read("a")
        manager.dispatch_next()
        assert manager.stats_padded == 3

    def test_reset_epoch_clears_state(self, manager):
        manager.schedule_read("a")
        manager.dispatch_next()
        manager.reset_epoch()
        assert manager.current_index == 0
        assert manager.batches_remaining() == 3
        assert manager.schedule_read("a") == 0

    def test_batches_remaining(self, manager):
        assert manager.batches_remaining() == 3
        manager.dispatch_next()
        assert manager.batches_remaining() == 2


class TestWriteBatch:
    def test_build_write_batch_sorted(self, manager):
        batch = manager.build_write_batch({"b": b"2", "a": b"1"})
        assert list(batch) == ["a", "b"]

    def test_tombstones_become_empty_payloads(self, manager):
        batch = manager.build_write_batch({"gone": None})
        assert batch["gone"] == b""

    def test_overflow_raises(self, manager):
        items = {f"k{i}": b"v" for i in range(5)}
        with pytest.raises(BatchFullError):
            manager.build_write_batch(items)

    def test_write_batch_padding(self, manager):
        assert manager.write_batch_padding(1) == 3
        assert manager.write_batch_padding(10) == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            BatchManager(read_batches=0, read_batch_size=4, write_batch_size=4)
