"""Tests for the epoch version cache."""

import pytest

from repro.concurrency.versions import Version
from repro.core.version_cache import VersionCache


@pytest.fixture
def cache():
    return VersionCache()


class TestBaseValues:
    def test_install_and_lookup(self, cache):
        cache.install_base("k", b"v")
        assert cache.has_base("k")
        assert cache.base_value("k") == b"v"

    def test_missing_key(self, cache):
        assert not cache.has_base("k")
        assert cache.base_value("k") is None

    def test_none_base_value_still_counts_as_cached(self, cache):
        cache.install_base("k", None)
        assert cache.has_base("k")
        assert cache.base_value("k") is None

    def test_pending_tracking(self, cache):
        cache.mark_pending("k")
        assert cache.is_pending("k")
        cache.install_base("k", b"v")
        assert not cache.is_pending("k")


class TestWriteBack:
    def test_write_back_set_takes_latest_committed(self, cache):
        chain = cache.store.chain("k")
        chain.insert(Version("k", b"v1", writer_ts=1, committed=True))
        chain.insert(Version("k", b"v2", writer_ts=2, committed=True))
        chain.insert(Version("k", b"dirty", writer_ts=3, committed=False))
        assert cache.write_back_set() == {"k": b"v2"}

    def test_write_back_skips_uncommitted_only_chains(self, cache):
        cache.store.chain("k").insert(Version("k", b"dirty", writer_ts=1, committed=False))
        assert cache.write_back_set() == {}

    def test_keys_written(self, cache):
        cache.store.chain("b")
        cache.store.chain("a")
        assert cache.keys_written() == ["a", "b"]


class TestLifecycle:
    def test_reset_clears_everything(self, cache):
        cache.install_base("k", b"v")
        cache.mark_pending("p")
        cache.store.chain("k").insert(Version("k", b"v", writer_ts=1, committed=True))
        cache.reset()
        assert not cache.has_base("k")
        assert not cache.is_pending("p")
        assert cache.write_back_set() == {}

    def test_stats(self, cache):
        cache.install_base("k", b"v")
        cache.mark_pending("p")
        stats = cache.stats()
        assert stats["base_values"] == 1
        assert stats["pending_fetches"] == 1
