"""Tests for the data handler and the key directory."""

import pytest

from repro.core.data_handler import DataHandler, KeyDirectory
from repro.oram.batch_executor import EpochBatchExecutor
from repro.oram.crypto import CipherSuite
from repro.oram.parameters import RingOramParameters
from repro.oram.ring_oram import RingOram
from repro.sim.clock import SimClock
from repro.storage.memory import InMemoryStorageServer


def make_handler():
    clock = SimClock()
    storage = InMemoryStorageServer(latency="server", clock=clock, charge_latency=False)
    params = RingOramParameters(num_blocks=64, z_real=4, s_dummies=6, evict_rate=3,
                                depth=4, block_size=64)
    oram = RingOram(params, storage, cipher=CipherSuite(block_size=72), clock=clock,
                    seed=3, dummiless_writes=True)
    executor = EpochBatchExecutor(oram, latency="server", parallelism=32)
    return DataHandler(oram, executor)


class TestKeyDirectory:
    def test_ids_are_stable_and_dense(self):
        directory = KeyDirectory()
        first = directory.block_id("alpha")
        second = directory.block_id("beta")
        assert directory.block_id("alpha") == first
        assert {first, second} == {0, 1}
        assert len(directory) == 2

    def test_known(self):
        directory = KeyDirectory()
        directory.block_id("a")
        assert directory.known("a")
        assert not directory.known("b")

    def test_full_serialisation_roundtrip(self):
        directory = KeyDirectory()
        for key in ("a", "b", "c"):
            directory.block_id(key)
        restored = KeyDirectory.deserialize(directory.serialize())
        assert restored.block_id("b") == directory.block_id("b")
        assert restored.block_id("new") == 3     # next id preserved

    def test_delta_serialisation_contains_only_new_keys(self):
        directory = KeyDirectory()
        directory.block_id("old")
        directory.clear_dirty()
        directory.block_id("fresh")
        other = KeyDirectory()
        applied = other.apply_delta(directory.serialize_delta())
        assert applied == 1
        assert other.known("fresh")
        assert not other.known("old")

    def test_delta_preserves_next_id(self):
        directory = KeyDirectory()
        for key in ("a", "b", "c"):
            directory.block_id(key)
        directory.clear_dirty()
        directory.block_id("d")
        other = KeyDirectory()
        other.apply_delta(directory.serialize_delta())
        assert other.block_id("brand-new") == 4


class TestDataHandler:
    def test_read_batch_installs_base_values(self):
        handler = make_handler()
        handler.begin_epoch()
        handler.execute_write_batch({"k1": b"v1", "k2": b"v2"}, batch_size=4)
        handler.flush()
        handler.begin_epoch()
        values = handler.execute_read_batch(["k1", "k2", "missing"], batch_size=8)
        assert values["k1"] == b"v1"
        assert values["missing"] is None
        assert handler.has_cached("k1")
        assert handler.cached_value("k2") == b"v2"

    def test_cached_keys_not_refetched(self):
        handler = make_handler()
        handler.begin_epoch()
        handler.execute_read_batch(["k1"], batch_size=4)
        served_before = handler.stats_reads_served_from_cache
        handler.execute_read_batch(["k1"], batch_size=4)
        assert handler.stats_reads_served_from_cache > served_before

    def test_abort_epoch_clears_cache_and_buffered_writes(self):
        handler = make_handler()
        handler.begin_epoch()
        handler.execute_read_batch(["k1"], batch_size=4)
        handler.abort_epoch()
        assert not handler.has_cached("k1")
        assert handler.executor.pending_bucket_writes() == 0

    def test_stash_resident_detection(self):
        handler = make_handler()
        handler.begin_epoch()
        handler.execute_write_batch({"hot": b"value"}, batch_size=2)
        handler.flush()
        if handler.stash_resident("hot"):
            assert handler.stash_value("hot") == b"value"
        assert not handler.stash_resident("never-seen")

    def test_directory_grows_with_new_keys(self):
        handler = make_handler()
        handler.begin_epoch()
        handler.execute_read_batch(["a", "b"], batch_size=4)
        handler.execute_write_batch({"c": b"x"}, batch_size=2)
        handler.flush()
        assert len(handler.directory) == 3
