"""Tests for the client-side transaction API."""

import pytest

from repro.core.client import (AbortRequest, Read, ReadMany, Transaction, TransactionAborted,
                               TransactionResult, Write, static_program)


class TestOperations:
    def test_write_requires_bytes(self):
        with pytest.raises(TypeError):
            Write("k", "string-value")

    def test_read_many_normalises_keys_to_tuple(self):
        op = ReadMany(["a", "b"])
        assert op.keys == ("a", "b")

    def test_abort_request_default_reason(self):
        assert AbortRequest().reason == "user"


class TestStaticProgram:
    def test_reads_then_writes(self):
        program = static_program(["a", "b"], {"c": b"1"})
        generator = program()
        assert generator.send(None) == Read("a")
        assert generator.send(b"va") == Read("b")
        operation = generator.send(b"vb")
        assert operation == Write("c", b"1")
        with pytest.raises(StopIteration) as stop:
            generator.send(None)
        assert stop.value.value == {"a": b"va", "b": b"vb"}


class TestTransactionFacade:
    def _make(self, submit_results=None, committed_state=None):
        committed_state = committed_state or {}
        submitted = []

        def submit(program):
            generator = program()
            operations = []
            value = None
            while True:
                try:
                    op = generator.send(value)
                except StopIteration:
                    break
                operations.append(op)
                value = committed_state.get(op.key) if isinstance(op, Read) else None
            submitted.append(operations)
            if submit_results is not None:
                return submit_results
            return TransactionResult(txn_id=1, committed=True, return_value=True)

        def read_now(key):
            return committed_state.get(key)

        return Transaction(submit=submit, read_now=read_now), submitted

    def test_reads_return_committed_state(self):
        txn, _ = self._make(committed_state={"k": b"v"})
        assert txn.read("k") == b"v"

    def test_read_sees_own_buffered_write(self):
        txn, _ = self._make(committed_state={"k": b"committed"})
        txn.write("k", b"buffered")
        assert txn.read("k") == b"buffered"

    def test_read_sees_latest_buffered_write(self):
        txn, _ = self._make(committed_state={"k": b"committed"})
        txn.write("k", b"first")
        txn.write("k", b"second")
        assert txn.read("k") == b"second"

    def test_buffered_write_to_other_key_does_not_leak(self):
        txn, _ = self._make(committed_state={"k": b"v"})
        txn.write("j", b"other")
        assert txn.read("k") == b"v"

    def test_commit_still_replays_read_after_own_write(self):
        txn, submitted = self._make(committed_state={"k": b"v"})
        txn.write("k", b"new")
        assert txn.read("k") == b"new"
        txn.commit()
        ops = submitted[0]
        assert ops.index(Write("k", b"new")) < ops.index(Read("k"))

    def test_commit_replays_buffered_operations(self):
        txn, submitted = self._make(committed_state={"k": b"v"})
        txn.read("k")
        txn.write("j", b"new")
        result = txn.commit()
        assert result.committed
        ops = submitted[0]
        assert Read("k") in ops
        assert Write("j", b"new") in ops

    def test_commit_failure_raises_transaction_aborted(self):
        failed = TransactionResult(txn_id=9, committed=False, abort_reason="write_conflict")
        txn, _ = self._make(submit_results=failed)
        txn.write("k", b"v")
        with pytest.raises(TransactionAborted) as err:
            txn.commit()
        assert err.value.reason == "write_conflict"

    def test_write_requires_bytes(self):
        txn, _ = self._make()
        with pytest.raises(TypeError):
            txn.write("k", 123)

    def test_operations_after_commit_rejected(self):
        txn, _ = self._make()
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.read("k")

    def test_abort_discards_operations(self):
        txn, submitted = self._make()
        txn.write("k", b"v")
        txn.abort()
        assert submitted == []

    def test_context_manager_commits_on_success(self):
        txn, submitted = self._make()
        with txn as handle:
            handle.write("k", b"v")
        assert len(submitted) == 1

    def test_context_manager_aborts_on_exception(self):
        txn, submitted = self._make()
        with pytest.raises(RuntimeError):
            with txn as handle:
                handle.write("k", b"v")
                raise RuntimeError("boom")
        assert submitted == []
