"""Tests for epoch bookkeeping."""

import pytest

from repro.concurrency.transaction import TransactionRecord
from repro.core.epoch import EpochPhase, EpochState, EpochSummary


def make_txn(txn_id=1):
    return TransactionRecord(txn_id=txn_id, timestamp=txn_id, epoch=0)


class TestEpochState:
    def test_admit_records_transaction(self):
        state = EpochState(epoch_id=0)
        state.admit(make_txn(1))
        assert 1 in state.transactions

    def test_admit_rejected_after_finish(self):
        state = EpochState(epoch_id=0)
        state.finish(EpochPhase.COMMITTED, now_ms=5.0)
        with pytest.raises(ValueError):
            state.admit(make_txn(2))

    def test_record_read_batch(self):
        state = EpochState(epoch_id=0)
        state.record_read_batch(["a", "b"])
        state.record_read_batch(["c"])
        assert state.read_batches_dispatched == 2
        assert state.physical_read_keys[1] == ["c"]

    def test_finish_requires_terminal_phase(self):
        state = EpochState(epoch_id=0)
        with pytest.raises(ValueError):
            state.finish(EpochPhase.OPEN, now_ms=1.0)

    def test_duration(self):
        state = EpochState(epoch_id=0, start_ms=10.0)
        state.finish(EpochPhase.COMMITTED, now_ms=35.0)
        assert state.duration_ms == pytest.approx(25.0)

    def test_counts(self):
        state = EpochState(epoch_id=0)
        state.committed_txn_ids.extend([1, 2])
        state.aborted_txn_ids.append(3)
        assert state.committed_count() == 2
        assert state.aborted_count() == 1


class TestEpochSummary:
    def test_from_state(self):
        state = EpochState(epoch_id=3, start_ms=0.0)
        state.committed_txn_ids.append(1)
        state.finish(EpochPhase.COMMITTED, now_ms=12.0)
        summary = EpochSummary.from_state(state, physical_reads=100, physical_writes=40)
        assert summary.epoch_id == 3
        assert summary.committed == 1
        assert summary.physical_reads == 100
        assert summary.duration_ms == pytest.approx(12.0)
