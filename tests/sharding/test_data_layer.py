"""Tests for the DataLayer seam: routing, namespacing, topology, timing."""

import pytest

from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy
from repro.sharding import (PartitionedDataLayer, SingleOramDataLayer,
                            build_data_layer, key_partition)
from repro.sim.clock import SimClock
from repro.storage.cluster import StorageCluster
from repro.storage.memory import InMemoryStorageServer
from repro.storage.namespace import NamespacedStorage, partition_prefix


def _config(**overrides):
    base = dict(
        oram=RingOramConfig(num_blocks=256, z_real=4, block_size=64),
        read_batches=2, read_batch_size=16, write_batch_size=16,
        backend="dummy", durability=False, encrypt=False, seed=9,
    )
    base.update(overrides)
    return ObladiConfig(**base)


def _layer(shards):
    clock = SimClock()
    storage = InMemoryStorageServer(latency="dummy", clock=clock, charge_latency=False)
    return build_data_layer(_config(shards=shards), storage=storage, clock=clock,
                            master_key=b"m" * 32)


class TestKeyPartition:
    def test_single_shard_always_zero(self):
        assert key_partition("anything", 1) == 0

    def test_deterministic_across_calls(self):
        for key in ("a", "k17", "account:42"):
            assert key_partition(key, 8, 3) == key_partition(key, 8, 3)

    def test_partition_seed_perturbs_the_mapping(self):
        keys = [f"k{i}" for i in range(200)]
        mapping_a = [key_partition(k, 8, 0) for k in keys]
        mapping_b = [key_partition(k, 8, 1) for k in keys]
        assert mapping_a != mapping_b

    def test_roughly_balanced(self):
        counts = {}
        for i in range(4000):
            counts.setdefault(key_partition(f"key-{i}", 4), 0)
            counts[key_partition(f"key-{i}", 4)] = counts.get(key_partition(f"key-{i}", 4), 0) + 1
        assert set(counts) == {0, 1, 2, 3}
        for count in counts.values():
            assert 700 < count < 1300   # 1000 expected; generous tolerance


class TestNamespacedStorage:
    def test_round_trip_and_isolation(self):
        base = InMemoryStorageServer(latency="dummy")
        view_a = NamespacedStorage(base, partition_prefix(0))
        view_b = NamespacedStorage(base, partition_prefix(1))
        view_a.write("x", b"from-a")
        view_b.write("x", b"from-b")
        assert view_a.read("x") == b"from-a"
        assert view_b.read("x") == b"from-b"
        assert base.read("p0/x") == b"from-a"
        assert sorted(view_a.keys()) == ["x"]

    def test_shares_base_clock_and_trace(self):
        base = InMemoryStorageServer(latency="dummy")
        view = NamespacedStorage(base, "p3/")
        view.write("y", b"payload")
        assert view.clock is base.clock
        assert view.trace is base.trace
        assert base.trace.keys_accessed()[-1] == "p3/y"

    def test_trace_filter_prefix_recovers_partition_view(self):
        base = InMemoryStorageServer(latency="dummy")
        NamespacedStorage(base, "p0/").write("x", b"a")
        NamespacedStorage(base, "p1/").write("x", b"b")
        view = base.trace.filter_prefix("p1/")
        assert view.keys_accessed() == ["x"]
        unstripped = base.trace.filter_prefix("p1/", strip=False)
        assert unstripped.keys_accessed() == ["p1/x"]


class TestBuildDataLayer:
    def test_single_layer_for_one_shard(self):
        layer = _layer(1)
        assert isinstance(layer, SingleOramDataLayer)
        assert layer.num_partitions == 1
        assert layer.partitions[0].component_prefix == ""

    def test_partitioned_layer_for_many_shards(self):
        layer = _layer(4)
        assert isinstance(layer, PartitionedDataLayer)
        assert layer.num_partitions == 4
        assert [p.component_prefix for p in layer.partitions] == \
            ["p0/", "p1/", "p2/", "p3/"]

    def test_partitions_have_independent_state(self):
        layer = _layer(4)
        orams = [p.oram for p in layer.partitions]
        assert len({id(o.position_map) for o in orams}) == 4
        assert len({id(o.stash) for o in orams}) == 4
        assert len({o.cipher.key for o in orams}) == 4   # distinct derived keys

    def test_partition_sizing_covers_keyspace(self):
        layer = _layer(4)
        for part in layer.partitions:
            assert part.oram.params.num_blocks == 64    # ceil(256 / 4)

    def test_routing_matches_key_partition(self):
        layer = _layer(4)
        config = layer.config
        for i in range(50):
            key = f"k{i}"
            assert layer.partition_of(key) == key_partition(
                key, config.shards, config.partition_seed)
            assert layer.partition_for_key(key).index == layer.partition_of(key)


class TestParallelTiming:
    def test_epoch_batch_time_is_max_over_partitions(self):
        """Fanning one batch across partitions charges the slowest partition,
        not the sum — sharded epochs finish faster than single-tree epochs."""
        data = {f"k{i}": bytes([i % 251]) for i in range(128)}

        def run(shards):
            config = _config(shards=shards, backend="server",
                             read_batches=1, read_batch_size=32, write_batch_size=16)
            proxy = ObladiProxy(config)
            proxy.load_initial_data(data)
            layer = proxy.data_layer
            # Respect per-partition quotas: take at most quota keys per shard
            # (the proxy's batch manager enforces exactly this bound).
            quota = config.partition_read_batch_size
            taken = {}
            keys = []
            for i in range(128):
                part = layer.partition_of(f"k{i}")
                if taken.get(part, 0) < min(quota, 4):
                    taken[part] = taken.get(part, 0) + 1
                    keys.append(f"k{i}")
            start = proxy.clock.now_ms
            layer.begin_epoch()
            layer.execute_read_batch(keys, 32)
            return proxy.clock.now_ms - start

        assert run(4) < run(1)

    def test_flush_advances_once_not_per_partition(self):
        config = _config(shards=4, backend="server")
        proxy = ObladiProxy(config)
        proxy.load_initial_data({f"k{i}": b"v" for i in range(64)})
        layer = proxy.data_layer
        layer.begin_epoch()
        layer.execute_write_batch({f"k{i}": b"new" for i in range(16)}, 16)
        before = proxy.clock.now_ms
        makespan = layer.flush()
        assert proxy.clock.now_ms == pytest.approx(before + makespan)

    def test_deferred_clock_leaves_no_residue(self):
        layer = _layer(4)
        layer.bulk_load({f"k{i}": b"v" for i in range(64)})
        layer.begin_epoch()
        layer.execute_read_batch([f"k{i}" for i in range(8)], 16)
        layer.flush()
        for part in layer.partitions:
            assert part.executor.deferred_ms == 0.0


def _cluster_layer(shards, servers, **overrides):
    clock = SimClock()
    config = _config(shards=shards, storage_servers=servers, **overrides)
    cluster = StorageCluster(latency=config.backend, num_servers=servers,
                             clock=clock, charge_latency=False,
                             link_extra_rtt_ms=config.link_extra_rtt_ms)
    return build_data_layer(config, storage=cluster, clock=clock,
                            master_key=b"m" * 32), cluster


class TestServerTopology:
    def test_partitions_are_hosted_round_robin(self):
        layer, cluster = _cluster_layer(4, 2)
        for part in layer.partitions:
            assert part.storage.base is cluster.server_for_partition(part.index)
            assert part.storage.prefix == partition_prefix(part.index)

    def test_per_partition_namespaces_land_on_their_host_server(self):
        layer, cluster = _cluster_layer(4, 4)
        layer.bulk_load({f"k{i}": b"v" for i in range(64)})
        for index, server in enumerate(cluster.servers):
            prefixes = {key.split("/", 1)[0] for key in server.keys()}
            assert prefixes == {f"p{index}"}

    def test_executors_use_their_links_latency_model(self):
        layer, cluster = _cluster_layer(
            4, 4, backend="server", link_extra_rtt_ms=(0.0, 5.0, 0.0, 9.0))
        rtts = [part.executor.latency.read_rtt_ms for part in layer.partitions]
        assert rtts == pytest.approx([0.3, 5.3, 0.3, 9.3])

    def test_mismatched_cluster_size_rejected(self):
        clock = SimClock()
        cluster = StorageCluster(latency="dummy", num_servers=2, clock=clock)
        with pytest.raises(ValueError, match="cluster"):
            build_data_layer(_config(shards=4, storage_servers=4),
                             storage=cluster, clock=clock, master_key=b"m" * 32)

    def test_plain_server_with_multi_server_config_rejected(self):
        """No silent degrade to colocated: a multi-server config given a
        single server must fail loudly at the data-layer seam too."""
        clock = SimClock()
        storage = InMemoryStorageServer(latency="dummy", clock=clock)
        with pytest.raises(ValueError, match="StorageCluster"):
            build_data_layer(_config(shards=4, storage_servers=4),
                             storage=storage, clock=clock, master_key=b"m" * 32)

    def test_heterogeneous_link_slows_only_its_partitions(self):
        """A slow link raises the fan-out makespan only when one of *its*
        partitions has work — per-link cost, not per-tier cost."""
        layer, _ = _cluster_layer(4, 4, backend="server",
                                  link_extra_rtt_ms=(0.0, 0.0, 0.0, 50.0))
        layer.bulk_load({f"k{i}": b"v" for i in range(64)})
        layer.begin_epoch()
        start = layer.clock.now_ms
        layer.execute_read_batch([f"k{i}" for i in range(8)], 16)
        layer.flush()
        elapsed = layer.clock.now_ms - start
        # The padded batches touch every partition each round, so the 50 ms
        # link dominates the makespan.
        assert elapsed >= 50.0


class TestStaggeredFanout:
    def test_enough_lanes_charges_the_ideal_parallel_bound(self):
        layer = _layer(4)   # default parallelism (1024) >= shards
        layer.bulk_load({f"k{i}": b"v" for i in range(64)})
        layer.begin_epoch()
        layer.execute_read_batch([f"k{i}" for i in range(8)], 16)
        layer.flush()
        stats = layer.fanout_stats
        assert stats.staggered_fanouts == 0
        assert stats.actual_ms == pytest.approx(stats.ideal_ms)

    def test_lane_pressure_staggers_between_the_bounds(self):
        clock = SimClock()
        storage = InMemoryStorageServer(latency="server", clock=clock,
                                        charge_latency=False)
        config = _config(shards=8, parallelism=4, backend="server",
                         read_batch_size=32, write_batch_size=32)
        layer = build_data_layer(config, storage=storage, clock=clock,
                                 master_key=b"m" * 32)
        assert config.fanout_lanes == 4
        layer.bulk_load({f"k{i}": b"v" for i in range(128)})
        layer.begin_epoch()
        layer.execute_read_batch([f"k{i}" for i in range(16)], 32)
        layer.flush()
        stats = layer.fanout_stats
        assert stats.staggered_fanouts > 0
        assert stats.ideal_ms < stats.actual_ms < stats.serial_ms

    def test_fanout_makespan_advances_the_shared_clock(self):
        clock = SimClock()
        storage = InMemoryStorageServer(latency="server", clock=clock,
                                        charge_latency=False)
        config = _config(shards=8, parallelism=4, backend="server",
                         read_batch_size=32, write_batch_size=32)
        layer = build_data_layer(config, storage=storage, clock=clock,
                                 master_key=b"m" * 32)
        layer.bulk_load({f"k{i}": b"v" for i in range(128)})
        layer.begin_epoch()
        before = clock.now_ms
        layer.execute_read_batch([f"k{i}" for i in range(16)], 32)
        actual_before_flush = layer.fanout_stats.actual_ms
        assert clock.now_ms == pytest.approx(before + actual_before_flush)
