"""Tests for the strict-2PL (MySQL-like) baseline."""

import pytest

from repro.baseline.mysql_like import TwoPhaseLockingStore
from repro.concurrency.serializability import check_serializable
from repro.core.client import AbortRequest, Read, ReadMany, Write


def read_factory(key):
    def factory():
        def program():
            value = yield Read(key)
            return value
        return program()
    return factory


def write_factory(key, value):
    def factory():
        def program():
            yield Write(key, value)
            return True
        return program()
    return factory


def read_modify_write(key):
    def factory():
        def program():
            value = yield Read(key)
            yield Write(key, (value or b"") + b"x")
            return True
        return program()
    return factory


def crossing_pair(a, b):
    """Two factories that lock a/b in opposite orders (deadlock prone)."""

    def first():
        def program():
            yield Write(a, b"1")
            yield Write(b, b"1")
            return True
        return program()

    def second():
        def program():
            yield Write(b, b"2")
            yield Write(a, b"2")
            return True
        return program()

    return first, second


@pytest.fixture
def store():
    store = TwoPhaseLockingStore()
    store.load_initial_data({f"row{i}": b"0" for i in range(20)})
    return store


class TestCorrectness:
    def test_read_loaded_data(self, store):
        result = store.run_transactions([read_factory("row5")], clients=2)
        assert result.results[0].return_value == b"0"

    def test_write_then_read(self, store):
        store.run_transactions([write_factory("row1", b"42")], clients=1)
        result = store.run_transactions([read_factory("row1")], clients=1)
        assert result.results[-1].return_value == b"42"

    def test_read_many(self, store):
        def factory():
            def program():
                values = yield ReadMany(["row1", "row2"])
                return values
            return program()

        result = store.run_transactions([factory], clients=1)
        assert result.results[0].return_value == {"row1": b"0", "row2": b"0"}

    def test_user_abort(self, store):
        def factory():
            def program():
                yield Write("row1", b"no")
                yield AbortRequest()
                return None
            return program()

        result = store.run_transactions([factory], clients=1, retry_aborted=False)
        assert result.aborted == 1
        check = store.run_transactions([read_factory("row1")], clients=1)
        assert check.results[-1].return_value == b"0"

    def test_contended_counter_serialises(self, store):
        factories = [read_modify_write("row0") for _ in range(20)]
        result = store.run_transactions(factories, clients=8, max_retries=5)
        assert result.committed >= 18
        final = store.run_transactions([read_factory("row0")], clients=1)
        # The initial value is b"0"; every committed increment appended one byte.
        assert len(final.results[-1].return_value) == result.committed + 1

    def test_history_serializable_under_contention(self, store):
        factories = [read_modify_write(f"row{i % 4}") for i in range(40)]
        store.run_transactions(factories, clients=8, max_retries=4)
        ok, cycle = check_serializable(store.committed_history)
        assert ok, cycle

    def test_deadlock_is_broken_and_work_completes(self, store):
        # Opposite lock orders on purpose: deadlocks must be detected and the
        # run must terminate with most transactions eventually committing.
        first, second = crossing_pair("row1", "row2")
        result = store.run_transactions([first, second] * 8, clients=8, max_retries=8)
        assert result.committed >= 8
        # Deadlock victims may appear as aborted, but nothing hangs.
        assert result.committed + result.aborted >= 16
        final = store.run_transactions([read_factory("row1")], clients=1)
        assert final.results[-1].return_value in (b"1", b"2")


class TestPerformanceModel:
    def test_lock_waits_increase_latency_under_contention(self):
        data = {f"row{i}": b"0" for i in range(32)}
        contended = TwoPhaseLockingStore()
        spread = TwoPhaseLockingStore()
        contended.load_initial_data(data)
        spread.load_initial_data(data)
        hot = contended.run_transactions([read_modify_write("row0") for _ in range(40)],
                                         clients=8, max_retries=5)
        cold = spread.run_transactions([read_modify_write(f"row{i % 32}") for i in range(40)],
                                       clients=8, max_retries=5)
        assert hot.average_latency_ms >= cold.average_latency_ms

    def test_throughput_positive(self, store):
        result = store.run_transactions([read_factory(f"row{i % 20}") for i in range(30)],
                                        clients=4)
        assert result.throughput_tps > 0
