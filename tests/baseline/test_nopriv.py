"""Tests for the NoPriv baseline."""

import pytest

from repro.baseline.nopriv import NoPrivProxy
from repro.concurrency.serializability import check_serializable
from repro.core.client import AbortRequest, Read, ReadMany, Write


def simple_read(key):
    def factory():
        def program():
            value = yield Read(key)
            return value
        return program()
    return factory


def simple_write(key, value):
    def factory():
        def program():
            yield Write(key, value)
            return True
        return program()
    return factory


def transfer(src, dst):
    def factory():
        def program():
            balances = yield ReadMany([src, dst])
            yield Write(src, (balances[src] or b"0") + b"-")
            yield Write(dst, (balances[dst] or b"0") + b"+")
            return True
        return program()
    return factory


@pytest.fixture
def nopriv():
    proxy = NoPrivProxy(backend="server")
    proxy.load_initial_data({f"acct{i}": b"100" for i in range(20)})
    return proxy


class TestCorrectness:
    def test_reads_see_loaded_data(self, nopriv):
        result = nopriv.run_transactions([simple_read("acct3")], clients=2)
        assert result.committed == 1
        assert result.results[0].return_value == b"100"

    def test_writes_become_durable(self, nopriv):
        nopriv.run_transactions([simple_write("acct1", b"250")], clients=2)
        result = nopriv.run_transactions([simple_read("acct1")], clients=2)
        assert result.results[-1].return_value == b"250"

    def test_user_abort_counts_as_aborted(self, nopriv):
        def factory():
            def program():
                yield AbortRequest()
                return None
            return program()

        result = nopriv.run_transactions([factory], clients=1, retry_aborted=False)
        assert result.aborted == 1
        assert result.committed == 0

    def test_many_transactions_all_resolve(self, nopriv):
        factories = [transfer(f"acct{i % 10}", f"acct{(i + 1) % 10}") for i in range(60)]
        result = nopriv.run_transactions(factories, clients=8)
        assert result.committed + result.aborted >= 60
        assert result.committed > 0

    def test_committed_history_serializable(self, nopriv):
        factories = [transfer(f"acct{i % 6}", f"acct{(i + 3) % 6}") for i in range(40)]
        nopriv.run_transactions(factories, clients=8)
        ok, cycle = check_serializable(nopriv.committed_history)
        assert ok, cycle

    def test_retry_of_aborted_transactions(self, nopriv):
        factories = [transfer("acct0", "acct1") for _ in range(30)]
        result = nopriv.run_transactions(factories, clients=10, max_retries=3)
        # Heavy contention on two keys forces conflicts; retries happen.
        assert result.retries >= 0
        assert result.committed > 0


class TestPerformanceModel:
    def test_throughput_positive(self, nopriv):
        result = nopriv.run_transactions([simple_read(f"acct{i % 10}") for i in range(40)],
                                         clients=8)
        assert result.throughput_tps > 0
        assert result.makespan_ms > 0

    def test_wan_slower_than_lan(self):
        data = {f"k{i}": b"v" for i in range(20)}
        lan, wan = NoPrivProxy(backend="server"), NoPrivProxy(backend="server_wan")
        lan.load_initial_data(data)
        wan.load_initial_data(data)
        factories = [simple_read(f"k{i % 20}") for i in range(60)]
        lan_result = lan.run_transactions(list(factories), clients=8)
        wan_result = wan.run_transactions(list(factories), clients=8)
        assert wan_result.average_latency_ms > lan_result.average_latency_ms
        assert wan_result.throughput_tps < lan_result.throughput_tps

    def test_more_clients_do_not_reduce_committed_count(self, nopriv):
        factories = [simple_read(f"acct{i % 20}") for i in range(40)]
        few = nopriv.run_transactions(list(factories), clients=2)
        many = nopriv.run_transactions(list(factories), clients=16)
        assert few.committed == many.committed == 40

    def test_latency_percentiles_available(self, nopriv):
        result = nopriv.run_transactions([simple_read("acct1") for _ in range(20)], clients=4)
        assert result.p95_latency_ms >= result.average_latency_ms * 0.5
        assert result.abort_rate == 0.0
