"""Property-based tests for the Obladi proxy as a transactional key-value store."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency.serializability import check_serializable
from repro.core.client import Read, ReadMany, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy


def build_proxy(seed):
    config = ObladiConfig(
        oram=RingOramConfig(num_blocks=128, z_real=4, block_size=96),
        read_batches=3, read_batch_size=8, write_batch_size=8,
        backend="dummy", durability=False, seed=seed, encrypt=False,
    )
    proxy = ObladiProxy(config)
    proxy.load_initial_data({f"k{i}": f"init-{i}".encode() for i in range(12)})
    return proxy


#: A batch of single-key read-modify-write transactions described as
#: (key index, new value) pairs grouped per epoch.
epoch_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=11), st.binary(min_size=1, max_size=8)),
    min_size=1, max_size=4,
)


class TestProxyLinearisesEpochs:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(epoch_strategy, min_size=1, max_size=4), st.integers(0, 2**16))
    def test_committed_writes_follow_epoch_order(self, epochs, seed):
        """The value read after all epochs is the last *committed* write, and
        committed histories are serializable."""
        proxy = build_proxy(seed)
        expected = {f"k{i}": f"init-{i}".encode() for i in range(12)}

        for epoch_ops in epochs:
            handles = []
            for key_index, value in epoch_ops:
                key = f"k{key_index}"

                def program(key=key, value=value):
                    yield Read(key)
                    yield Write(key, value)
                    return value

                proxy.submit(program)
                handles.append((key, value))
            summary = proxy.run_epoch()
            del summary
            # Determine which of this epoch's transactions committed and apply
            # them to the reference model in timestamp order.
            epoch_results = sorted((r for r in proxy.results.values()
                                    if r.epoch == proxy.epoch_summaries[-1].epoch_id),
                                   key=lambda r: r.txn_id)
            for result, (key, value) in zip(epoch_results, handles):
                if result.committed:
                    expected[key] = value

        def audit():
            rows = yield ReadMany([f"k{i}" for i in range(8)])
            return rows

        result = proxy.execute_transaction(audit)
        if result.committed:
            for key, value in result.return_value.items():
                assert value == expected[key], key

        ok, cycle = check_serializable(proxy.committed_history)
        assert ok, cycle

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16))
    def test_epoch_shape_independent_of_random_workload(self, seed):
        """Whatever transactions run, the adversary sees R read batches of the
        configured size followed by one write batch, per epoch."""
        proxy = build_proxy(seed)
        proxy.storage.trace.clear()
        rng = random.Random(seed)
        for _ in range(3):
            for _ in range(rng.randrange(1, 5)):
                key = f"k{rng.randrange(12)}"

                def program(key=key):
                    value = yield Read(key)
                    if rng.random() < 0.5:
                        yield Write(key, b"x")
                    return value

                proxy.submit(program)
            proxy.run_epoch()
        shape = proxy.storage.trace.batch_shape()
        read_sizes = {size for kind, size in shape if kind == "read"}
        kinds = [kind for kind, _ in shape]
        assert read_sizes == {proxy.config.read_batch_size}
        assert kinds == (["read"] * proxy.config.read_batches + ["write"]) * 3
