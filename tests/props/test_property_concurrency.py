"""Property-based tests for concurrency control invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concurrency.mvtso import MVTSOManager, WriteConflictError
from repro.concurrency.serializability import check_serializable
from repro.concurrency.transaction import AbortReason, CommittedTransaction, TransactionStatus
from repro.sim.scheduler import ParallelScheduler, ScheduledOp


#: One randomly generated transaction: a list of (is_write, key) operations.
txn_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=5)),
    min_size=1, max_size=5,
)


class TestMVTSOSerializability:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(txn_strategy, min_size=1, max_size=8), st.integers(0, 2**16))
    def test_every_committed_history_is_serializable(self, transactions, seed):
        """Interleave random transactions through MVTSO; committed results must
        always form an acyclic serialization graph."""
        mgr = MVTSOManager()
        rng = random.Random(seed)
        runners = []
        for ops in transactions:
            runners.append({"record": mgr.begin(epoch=0), "ops": list(ops)})

        active = [r for r in runners]
        while active:
            runner = rng.choice(active)
            record = runner["record"]
            if record.is_finished:
                active.remove(runner)
                continue
            if not runner["ops"]:
                if record.status is TransactionStatus.ACTIVE:
                    record.request_commit()
                if mgr.can_commit(record):
                    deps = [mgr.transactions[d] for d in record.dependencies]
                    if all(d.is_finished for d in deps):
                        mgr.commit(record)
                    elif rng.random() < 0.3:
                        mgr.abort(record, AbortReason.USER)
                else:
                    mgr.abort(record, AbortReason.CASCADE)
                if record.is_finished:
                    active.remove(runner)
                continue
            is_write, key_index = runner["ops"].pop(0)
            key = f"key{key_index}"
            if is_write:
                try:
                    mgr.write(record, key, f"{record.txn_id}".encode())
                except WriteConflictError:
                    mgr.abort(record, AbortReason.WRITE_CONFLICT)
                    active.remove(runner)
            else:
                mgr.read(record, key)

        history = [CommittedTransaction.from_record(r["record"]) for r in runners
                   if r["record"].status is TransactionStatus.COMMITTED]
        ok, cycle = check_serializable(history)
        assert ok, f"cycle {cycle}"

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=10))
    def test_no_committed_reader_of_aborted_writer(self, key_indexes):
        """Recoverability: a committed transaction never observed aborted data."""
        mgr = MVTSOManager()
        writer = mgr.begin(epoch=0)
        readers = [mgr.begin(epoch=0) for _ in key_indexes]
        for key_index in set(key_indexes):
            mgr.write(writer, f"k{key_index}", b"dirty")
        for reader, key_index in zip(readers, key_indexes):
            mgr.read(reader, f"k{key_index}")
        mgr.abort(writer, AbortReason.USER)
        for reader in readers:
            assert reader.status is TransactionStatus.ABORTED


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30),
           st.integers(min_value=1, max_value=8))
    def test_makespan_bounds(self, durations, workers):
        """Makespan lies between max(duration) and sum(durations), and more
        workers never hurt."""
        ops = [ScheduledOp(i, d) for i, d in enumerate(durations)]
        narrow = ParallelScheduler(workers).schedule(ops).makespan_ms
        wide = ParallelScheduler(workers * 2).schedule(ops).makespan_ms
        assert narrow >= max(durations) - 1e-9
        assert narrow <= sum(durations) + 1e-9
        assert wide <= narrow + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=2, max_size=20))
    def test_chain_makespan_is_sum(self, durations):
        ops = [ScheduledOp(i, d, deps=(i - 1,) if i else ()) for i, d in enumerate(durations)]
        result = ParallelScheduler(4).schedule(ops)
        assert abs(result.makespan_ms - sum(durations)) < 1e-6
