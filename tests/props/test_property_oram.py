"""Property-based tests (hypothesis) for the Ring ORAM substrate."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.oram import path_math
from repro.oram.crypto import CipherSuite
from repro.oram.parameters import RingOramParameters, derive_parameters
from repro.oram.ring_oram import RingOram
from repro.sim.clock import SimClock
from repro.storage.memory import InMemoryStorageServer


def build_oram(seed, depth=3, z=4, s=6, a=3, dummiless=False):
    clock = SimClock()
    storage = InMemoryStorageServer(latency="dummy", clock=clock, record_trace=False)
    params = RingOramParameters(num_blocks=z << depth, z_real=z, s_dummies=s,
                                evict_rate=a, depth=depth, block_size=64)
    return RingOram(params, storage, cipher=CipherSuite(block_size=72), clock=clock,
                    seed=seed, dummiless_writes=dummiless)


class TestPathMathProperties:
    @given(st.integers(min_value=0, max_value=2**10 - 1), st.integers(min_value=1, max_value=10))
    def test_every_bucket_on_path_contains_the_leaf(self, leaf, depth):
        leaf = leaf % (1 << depth)
        buckets = path_math.path_buckets(leaf, depth)
        assert len(buckets) == depth + 1
        for bucket in buckets:
            assert path_math.bucket_on_path(bucket, leaf, depth)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=8))
    def test_eviction_count_closed_form_matches_simulation(self, total, depth):
        total = total % 200
        observed = {bid: 0 for bid in range(path_math.num_buckets(depth))}
        for g in range(total):
            for bid in path_math.path_buckets(path_math.eviction_path(g, depth), depth):
                observed[bid] += 1
        for bid, count in observed.items():
            assert path_math.eviction_count_for_bucket(bid, total, depth) == count

    @given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=1, max_value=16))
    def test_reverse_bits_is_an_involution(self, value, width):
        value = value % (1 << width)
        assert path_math.reverse_bits(path_math.reverse_bits(value, width), width) == value

    @given(st.integers(min_value=1, max_value=200_000), st.integers(min_value=1, max_value=128))
    def test_derived_tree_always_fits_the_blocks(self, blocks, z):
        params = derive_parameters(num_blocks=blocks, z_real=z)
        assert params.z_real * params.num_leaves >= blocks
        assert params.s_dummies >= 1
        assert params.evict_rate >= 1


class TestOramProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15), st.binary(min_size=1, max_size=12)),
                    min_size=1, max_size=60),
           st.integers(min_value=0, max_value=2**16))
    def test_oram_behaves_like_a_dictionary(self, operations, seed):
        """Writes followed by reads always return the latest written value."""
        oram = build_oram(seed)
        reference = {}
        rng = random.Random(seed)
        for block, value in operations:
            if reference and rng.random() < 0.4:
                probe = rng.choice(sorted(reference))
                assert oram.read(probe) == reference[probe]
            oram.write(block, value)
            reference[block] = value
        for block, value in sorted(reference.items()):
            assert oram.read(block) == value

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=80),
           st.integers(min_value=0, max_value=2**16))
    def test_path_invariant_always_holds(self, accesses, seed):
        """After any access sequence every block is in the stash or on its path."""
        oram = build_oram(seed, dummiless=True)
        for block in range(16):
            oram.write(block, bytes([block]))
        for block in accesses:
            oram.read(block)
        for block in range(16):
            leaf = oram.position_map.lookup(block)
            if block in oram.stash or leaf is None:
                continue
            found = False
            for bid in path_math.path_buckets(leaf, oram.params.depth):
                if block in oram.metadata.bucket(bid).valid_real_block_ids():
                    found = True
                    break
            assert found, f"block {block} neither in stash nor on its path"

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=120),
           st.integers(min_value=0, max_value=2**16))
    def test_stash_never_explodes(self, accesses, seed):
        oram = build_oram(seed, depth=4, dummiless=True)
        for i, block in enumerate(accesses):
            oram.write(block, bytes([i % 251]))
        assert len(oram.stash) <= 6 * oram.params.z_real


class TestCryptoProperties:
    @given(st.binary(min_size=0, max_size=56), st.binary(min_size=8, max_size=32))
    def test_encrypt_decrypt_identity(self, payload, context):
        suite = CipherSuite(key=b"key" * 11, block_size=64)
        assert suite.decrypt(suite.encrypt(payload, context), context) == payload

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.binary(min_size=0, max_size=40))
    def test_seal_open_identity(self, block_id, value):
        suite = CipherSuite(key=b"key" * 11, block_size=64)
        opened_id, opened_value = suite.open_block(suite.seal_block(block_id, value))
        assert opened_id == block_id
        assert opened_value == value

    @given(st.binary(min_size=0, max_size=56))
    def test_ciphertext_length_constant(self, payload):
        suite = CipherSuite(key=b"key" * 11, block_size=64)
        assert len(suite.encrypt(payload)) == suite.ciphertext_size
