"""Property-based tests (hypothesis) for the Ring ORAM substrate."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.obliviousness import (check_bucket_invariant,
                                          partition_trace_similarity,
                                          partition_traces,
                                          server_partition_traces,
                                          server_traces, trace_similarity)
from repro.core.client import Read, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy
from repro.oram import path_math
from repro.oram.crypto import CipherSuite
from repro.oram.parameters import (RingOramParameters, derive_parameters,
                                   partition_block_count)
from repro.oram.ring_oram import RingOram
from repro.sim.clock import SimClock
from repro.storage.memory import InMemoryStorageServer


def build_oram(seed, depth=3, z=4, s=6, a=3, dummiless=False):
    clock = SimClock()
    storage = InMemoryStorageServer(latency="dummy", clock=clock, record_trace=False)
    params = RingOramParameters(num_blocks=z << depth, z_real=z, s_dummies=s,
                                evict_rate=a, depth=depth, block_size=64)
    return RingOram(params, storage, cipher=CipherSuite(block_size=72), clock=clock,
                    seed=seed, dummiless_writes=dummiless)


class TestPathMathProperties:
    @given(st.integers(min_value=0, max_value=2**10 - 1), st.integers(min_value=1, max_value=10))
    def test_every_bucket_on_path_contains_the_leaf(self, leaf, depth):
        leaf = leaf % (1 << depth)
        buckets = path_math.path_buckets(leaf, depth)
        assert len(buckets) == depth + 1
        for bucket in buckets:
            assert path_math.bucket_on_path(bucket, leaf, depth)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=8))
    def test_eviction_count_closed_form_matches_simulation(self, total, depth):
        total = total % 200
        observed = {bid: 0 for bid in range(path_math.num_buckets(depth))}
        for g in range(total):
            for bid in path_math.path_buckets(path_math.eviction_path(g, depth), depth):
                observed[bid] += 1
        for bid, count in observed.items():
            assert path_math.eviction_count_for_bucket(bid, total, depth) == count

    @given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=1, max_value=16))
    def test_reverse_bits_is_an_involution(self, value, width):
        value = value % (1 << width)
        assert path_math.reverse_bits(path_math.reverse_bits(value, width), width) == value

    @given(st.integers(min_value=1, max_value=200_000), st.integers(min_value=1, max_value=128))
    def test_derived_tree_always_fits_the_blocks(self, blocks, z):
        params = derive_parameters(num_blocks=blocks, z_real=z)
        assert params.z_real * params.num_leaves >= blocks
        assert params.s_dummies >= 1
        assert params.evict_rate >= 1


class TestOramProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15), st.binary(min_size=1, max_size=12)),
                    min_size=1, max_size=60),
           st.integers(min_value=0, max_value=2**16))
    def test_oram_behaves_like_a_dictionary(self, operations, seed):
        """Writes followed by reads always return the latest written value."""
        oram = build_oram(seed)
        reference = {}
        rng = random.Random(seed)
        for block, value in operations:
            if reference and rng.random() < 0.4:
                probe = rng.choice(sorted(reference))
                assert oram.read(probe) == reference[probe]
            oram.write(block, value)
            reference[block] = value
        for block, value in sorted(reference.items()):
            assert oram.read(block) == value

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=80),
           st.integers(min_value=0, max_value=2**16))
    def test_path_invariant_always_holds(self, accesses, seed):
        """After any access sequence every block is in the stash or on its path."""
        oram = build_oram(seed, dummiless=True)
        for block in range(16):
            oram.write(block, bytes([block]))
        for block in accesses:
            oram.read(block)
        for block in range(16):
            leaf = oram.position_map.lookup(block)
            if block in oram.stash or leaf is None:
                continue
            found = False
            for bid in path_math.path_buckets(leaf, oram.params.depth):
                if block in oram.metadata.bucket(bid).valid_real_block_ids():
                    found = True
                    break
            assert found, f"block {block} neither in stash nor on its path"

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=120),
           st.integers(min_value=0, max_value=2**16))
    def test_stash_never_explodes(self, accesses, seed):
        oram = build_oram(seed, depth=4, dummiless=True)
        for i, block in enumerate(accesses):
            oram.write(block, bytes([i % 251]))
        assert len(oram.stash) <= 6 * oram.params.z_real


SHARDS = 4


def build_sharded_proxy(seed=13, shards=SHARDS, storage_servers=1,
                        proxy_workers=1):
    from repro.proxytier import build_proxy
    config = ObladiConfig(
        oram=RingOramConfig(num_blocks=256, z_real=4, block_size=64),
        read_batches=2, read_batch_size=16, write_batch_size=16,
        backend="dummy", durability=False, encrypt=False,
        shards=shards, storage_servers=storage_servers, seed=seed,
        proxy_workers=proxy_workers,
    )
    proxy = build_proxy(config)
    proxy.load_initial_data({f"k{i}": bytes([i % 251]) for i in range(64)})
    return proxy


def run_sharded_workload(proxy, key_picker, epochs=12, txns_per_epoch=8, seed=5):
    rng = random.Random(seed)
    for _ in range(epochs):
        for _ in range(txns_per_epoch):
            key = key_picker(rng)

            def program(key=key):
                value = yield Read(key)
                yield Write(key, (value or b"") + b"!")
                return value

            proxy.submit(program)
        proxy.run_epoch()


class TestPartitionedObliviousness:
    """The adversary watches each partition's storage namespace separately:
    every indistinguishability property must hold per partition, not just in
    aggregate across the sharded proxy."""

    def _paired_traces(self, picker_a, picker_b, seed=13):
        proxy_a = build_sharded_proxy(seed=seed)
        proxy_b = build_sharded_proxy(seed=seed)
        proxy_a.storage.trace.clear()
        proxy_b.storage.trace.clear()
        run_sharded_workload(proxy_a, picker_a)
        run_sharded_workload(proxy_b, picker_b)
        depth = proxy_a.oram.params.depth
        return proxy_a, proxy_b, depth

    def test_different_workloads_same_per_partition_shape(self):
        """Uniform vs hot-key workloads: every partition sees the same number
        of physical requests (padded per-partition batches) and an
        indistinguishable path distribution."""
        proxy_a, proxy_b, depth = self._paired_traces(
            lambda rng: f"k{rng.randrange(64)}",     # uniform over the keyspace
            lambda rng: f"k{rng.randrange(4)}")      # four hot keys only
        split_a = partition_traces(proxy_a.storage.trace)
        split_b = partition_traces(proxy_b.storage.trace)
        assert set(split_a) == set(split_b) == set(range(SHARDS))

        distances = partition_trace_similarity(proxy_a.storage.trace,
                                               proxy_b.storage.trace, depth)
        assert set(distances) == set(range(SHARDS))
        for index, distance in distances.items():
            assert distance < 0.35, (
                f"partition {index} leaks its workload: TV distance {distance:.3f}")

    def test_bucket_invariant_holds_per_partition(self):
        proxy = build_sharded_proxy()
        run_sharded_workload(proxy, lambda rng: f"k{rng.randrange(32)}")
        # Checked on the shared trace (partition-aware) and per partition.
        assert check_bucket_invariant(proxy.storage.trace) == []
        for index, sub in partition_traces(proxy.storage.trace).items():
            assert check_bucket_invariant(sub) == [], f"partition {index}"

    def test_partition_trees_cover_the_keyspace(self):
        proxy = build_sharded_proxy()
        per_partition = partition_block_count(256, SHARDS)
        for part in proxy.data_layer.partitions:
            assert part.oram.params.num_blocks == per_partition
            assert part.oram.params.z_real * part.oram.params.num_leaves >= per_partition

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=2**16))
    def test_sharded_proxy_behaves_like_a_dictionary(self, seed):
        """Partitioning never changes answers: random read/write programs see
        exactly the values the reference dictionary predicts."""
        from repro.api.adapters import wrap_engine
        proxy = build_sharded_proxy(seed=seed)
        engine = wrap_engine(proxy)
        reference = {f"k{i}": bytes([i % 251]) for i in range(64)}
        rng = random.Random(seed)
        for _ in range(4):
            keys = list(dict.fromkeys(        # dedupe: avoid write conflicts
                f"k{rng.randrange(64)}" for _ in range(6)))
            new_values = {key: bytes([rng.randrange(251)]) for key in keys}

            def factory(key):
                def program():
                    value = yield Read(key)
                    yield Write(key, new_values[key])
                    return value
                return program

            results = engine.submit_many([factory(key) for key in keys])
            for key, result in zip(keys, results):
                if result.committed:
                    assert result.return_value == reference[key], key
                    reference[key] = new_values[key]

        for key in sorted(reference):
            assert engine.read(key) == reference[key], key


class TestPerServerObliviousness:
    """With distinct per-partition storage servers every *node* runs its own
    observer: each server's trace — and each partition namespace within it —
    must independently be workload independent.  This is what the colocated
    (namespaced single-server) layout could not even state."""

    def _paired_server_views(self, picker_a, picker_b, storage_servers, seed=13):
        proxy_a = build_sharded_proxy(seed=seed, storage_servers=storage_servers)
        proxy_b = build_sharded_proxy(seed=seed, storage_servers=storage_servers)
        proxy_a.storage.clear_traces()
        proxy_b.storage.clear_traces()
        run_sharded_workload(proxy_a, picker_a)
        run_sharded_workload(proxy_b, picker_b)
        depth = proxy_a.oram.params.depth
        return proxy_a, proxy_b, depth

    def test_each_server_trace_is_workload_independent(self):
        """Uniform vs hot-key workloads over one server per partition: every
        server's own view shows an indistinguishable path distribution."""
        proxy_a, proxy_b, depth = self._paired_server_views(
            lambda rng: f"k{rng.randrange(64)}",     # uniform over the keyspace
            lambda rng: f"k{rng.randrange(4)}",      # four hot keys only
            storage_servers=SHARDS)
        views_a = server_partition_traces(proxy_a.storage)
        views_b = server_partition_traces(proxy_b.storage)
        assert set(views_a) == set(views_b) == set(range(SHARDS))
        for server in range(SHARDS):
            assert set(views_a[server]) == set(views_b[server]) == {server}
            distance = trace_similarity(views_a[server][server],
                                        views_b[server][server], depth)
            assert distance < 0.35, (
                f"server {server} leaks its workload: TV distance {distance:.3f}")

    def test_grouped_servers_stay_independent_per_namespace(self):
        """M=2 servers for N=4 partitions: each server hosts two namespaces
        and each namespace's view must pass on its own."""
        proxy_a, proxy_b, depth = self._paired_server_views(
            lambda rng: f"k{rng.randrange(64)}",
            lambda rng: f"k{rng.randrange(4)}",
            storage_servers=2)
        views_a = server_partition_traces(proxy_a.storage)
        views_b = server_partition_traces(proxy_b.storage)
        for server in range(2):
            hosted = {p for p in range(SHARDS) if p % 2 == server}
            assert set(views_a[server]) == set(views_b[server]) == hosted
            for partition in hosted:
                distance = trace_similarity(views_a[server][partition],
                                            views_b[server][partition], depth)
                assert distance < 0.35, (
                    f"server {server} namespace p{partition} leaks: "
                    f"TV distance {distance:.3f}")

    def test_bucket_invariant_holds_on_every_server(self):
        proxy = build_sharded_proxy(storage_servers=SHARDS)
        run_sharded_workload(proxy, lambda rng: f"k{rng.randrange(32)}")
        views = server_traces(proxy.storage)
        assert set(views) == set(range(SHARDS))
        for server, trace in views.items():
            assert check_bucket_invariant(trace) == [], f"server {server}"
            for partition, sub in partition_traces(trace).items():
                assert check_bucket_invariant(sub) == [], (
                    f"server {server} partition {partition}")

    def test_per_server_batch_shape_depends_only_on_the_configuration(self):
        """Each node observes the same batch *pattern* no matter which
        logical workload ran: identical kind sequences, and every read batch
        padded to the per-partition quota.  (Write-back sizes vary with the
        eviction randomness, not with the workload — same as the
        single-server suite asserts.)"""
        proxy_a, proxy_b, _depth = self._paired_server_views(
            lambda rng: f"k{rng.randrange(64)}",
            lambda rng: f"k{rng.randrange(4)}",
            storage_servers=SHARDS)
        quota = proxy_a.config.partition_read_batch_size
        views_a = server_traces(proxy_a.storage)
        views_b = server_traces(proxy_b.storage)
        for server in range(SHARDS):
            shape_a = views_a[server].batch_shape()
            shape_b = views_b[server].batch_shape()
            assert shape_a, f"server {server} observed no batches"
            assert [kind for kind, _ in shape_a] == \
                [kind for kind, _ in shape_b], f"server {server}"
            for shape in (shape_a, shape_b):
                read_sizes = {size for kind, size in shape if kind == "read"}
                assert read_sizes == {quota}, f"server {server}"

    def test_single_server_views_degenerate_to_partition_traces(self):
        """On the colocated topology the per-server split is the whole trace:
        server_partition_traces({0: ...}) must agree with partition_traces."""
        proxy = build_sharded_proxy(storage_servers=1)
        run_sharded_workload(proxy, lambda rng: f"k{rng.randrange(16)}", epochs=4)
        views = server_partition_traces(proxy.storage)
        assert set(views) == {0}
        direct = partition_traces(proxy.storage.trace)
        assert set(views[0]) == set(direct)
        for partition in direct:
            assert views[0][partition].keys_accessed() == \
                direct[partition].keys_accessed()


class TestProxyTierObliviousness:
    """Sharding the *trusted* tier (``proxy_workers``) must not perturb the
    physical schedule at all: per-worker read scheduling happens strictly
    above the batch quotas, so the padded per-partition/per-server batches —
    and therefore every obliviousness property asserted above — are exactly
    those of the single-proxy deployment."""

    def _trace_fingerprint(self, trace):
        return ([(event.op, event.key, event.batch_id) for event in trace.events],
                [(batch.kind, batch.request_count) for batch in trace.batches])

    def test_physical_schedule_identical_to_single_proxy(self):
        """Same seed, same workload: the adversary's full view (request
        sequence, batch boundaries and shapes) is byte-identical whether the
        trusted tier runs 1 worker or 4."""
        single = build_sharded_proxy(proxy_workers=1)
        sharded = build_sharded_proxy(proxy_workers=4)
        single.storage.trace.clear()
        sharded.storage.trace.clear()
        run_sharded_workload(single, lambda rng: f"k{rng.randrange(64)}")
        run_sharded_workload(sharded, lambda rng: f"k{rng.randrange(64)}")
        assert self._trace_fingerprint(sharded.storage.trace) == \
            self._trace_fingerprint(single.storage.trace)

    def test_per_partition_views_stay_workload_independent(self):
        """Uniform vs hot-key workloads under proxy_workers=4: every ORAM
        partition's view still passes the same indistinguishability bar the
        single-proxy deployment is held to."""
        proxy_a = build_sharded_proxy(proxy_workers=4)
        proxy_b = build_sharded_proxy(proxy_workers=4)
        proxy_a.storage.trace.clear()
        proxy_b.storage.trace.clear()
        run_sharded_workload(proxy_a, lambda rng: f"k{rng.randrange(64)}")
        run_sharded_workload(proxy_b, lambda rng: f"k{rng.randrange(4)}")
        depth = proxy_a.oram.params.depth
        distances = partition_trace_similarity(proxy_a.storage.trace,
                                               proxy_b.storage.trace, depth)
        assert set(distances) == set(range(SHARDS))
        for index, distance in distances.items():
            assert distance < 0.35, (
                f"partition {index} leaks under proxy_workers=4: "
                f"TV distance {distance:.3f}")
        assert check_bucket_invariant(proxy_a.storage.trace) == []

    def test_per_server_views_stay_workload_independent(self):
        """The fully stacked deployment (workers × partitions × servers):
        each storage node's own observer still sees a workload-independent
        trace."""
        proxy_a = build_sharded_proxy(proxy_workers=4, storage_servers=SHARDS)
        proxy_b = build_sharded_proxy(proxy_workers=4, storage_servers=SHARDS)
        proxy_a.storage.clear_traces()
        proxy_b.storage.clear_traces()
        run_sharded_workload(proxy_a, lambda rng: f"k{rng.randrange(64)}")
        run_sharded_workload(proxy_b, lambda rng: f"k{rng.randrange(4)}")
        depth = proxy_a.oram.params.depth
        views_a = server_partition_traces(proxy_a.storage)
        views_b = server_partition_traces(proxy_b.storage)
        assert set(views_a) == set(views_b) == set(range(SHARDS))
        for server in range(SHARDS):
            distance = trace_similarity(views_a[server][server],
                                        views_b[server][server], depth)
            assert distance < 0.35, (
                f"server {server} leaks under proxy_workers=4: "
                f"TV distance {distance:.3f}")


class TestCryptoProperties:
    @given(st.binary(min_size=0, max_size=56), st.binary(min_size=8, max_size=32))
    def test_encrypt_decrypt_identity(self, payload, context):
        suite = CipherSuite(key=b"key" * 11, block_size=64)
        assert suite.decrypt(suite.encrypt(payload, context), context) == payload

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.binary(min_size=0, max_size=40))
    def test_seal_open_identity(self, block_id, value):
        suite = CipherSuite(key=b"key" * 11, block_size=64)
        opened_id, opened_value = suite.open_block(suite.seal_block(block_id, value))
        assert opened_id == block_id
        assert opened_value == value

    @given(st.binary(min_size=0, max_size=56))
    def test_ciphertext_length_constant(self, payload):
        suite = CipherSuite(key=b"key" * 11, block_size=64)
        assert len(suite.encrypt(payload)) == suite.ciphertext_size
