"""Property-based tests: vectorised path math and batched crypto ≡ scalar.

The hot-path PR replaced per-slot loops with batched helpers —
:func:`repro.oram.path_math.path_buckets_many` and friends, and
:meth:`repro.oram.crypto.CipherSuite.encrypt_many` /
:meth:`~repro.oram.crypto.CipherSuite.decrypt_many` — each with a
pure-python fallback behind the same API for numpy-less installs.  Every
property here pins the only contract that matters: over random depths,
leaves and payloads the batched form produces *exactly* the values of the
scalar form it replaced, with and without numpy.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.oram import path_math
from repro.oram.crypto import CipherSuite, IntegrityError, freshness_context

DEPTHS = st.integers(min_value=0, max_value=11)


def _as_list(result):
    """Normalise an ArrayLike (numpy array or nested list) to plain lists."""
    tolist = getattr(result, "tolist", None)
    return tolist() if tolist is not None else result


@st.composite
def depth_and_leaves(draw, max_leaves=64):
    depth = draw(DEPTHS)
    leaves = draw(st.lists(
        st.integers(min_value=0, max_value=(1 << depth) - 1),
        min_size=0, max_size=max_leaves))
    return depth, leaves


#: The ``numpy_mode`` fixture is function-scoped by design — the chosen mode
#: holds for *every* hypothesis example of a test, so the health check's
#: worry (fixture state leaking between examples) does not apply.
MODE_SETTINGS = settings(
    suppress_health_check=[HealthCheck.function_scoped_fixture])


@pytest.fixture(params=["numpy", "fallback"])
def numpy_mode(request, monkeypatch):
    """Run each property against the numpy path AND the pure-python fallback."""
    if request.param == "fallback":
        monkeypatch.setattr(path_math, "_np", None)
    elif path_math._np is None:  # pragma: no cover - numpy is baked in
        pytest.skip("numpy not installed")
    return request.param


class TestVectorisedPathMath:
    @MODE_SETTINGS
    @given(depth_and_leaves())
    def test_path_buckets_many_matches_scalar(self, numpy_mode, case):
        depth, leaves = case
        rows = _as_list(path_math.path_buckets_many(leaves, depth))
        assert rows == [path_math.path_buckets(leaf, depth) for leaf in leaves]

    @MODE_SETTINGS
    @given(DEPTHS, st.lists(st.integers(min_value=0, max_value=2**14),
                            min_size=0, max_size=64))
    def test_buckets_on_path_matches_scalar(self, numpy_mode, depth, bids):
        leaf = sum(bids) % (1 << depth)
        flags = _as_list(path_math.buckets_on_path(bids, leaf, depth))
        assert list(flags) == [path_math.bucket_on_path(bid, leaf, depth)
                               for bid in bids]

    @MODE_SETTINGS
    @given(depth_and_leaves())
    def test_deepest_common_levels_matches_scalar(self, numpy_mode, case):
        depth, leaves = case
        target = leaves[0] if leaves else 0
        levels = _as_list(path_math.deepest_common_levels(leaves, target, depth))
        assert list(levels) == [
            path_math.deepest_common_level(leaf, target, depth)
            for leaf in leaves]

    @MODE_SETTINGS
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=80), DEPTHS)
    def test_eviction_paths_matches_scalar(self, numpy_mode, start, count, depth):
        paths = _as_list(path_math.eviction_paths(start, count, depth))
        assert list(paths) == [path_math.eviction_path(g, depth)
                               for g in range(start, start + count)]

    @MODE_SETTINGS
    @given(DEPTHS)
    def test_out_of_range_leaf_rejected_either_way(self, numpy_mode, depth):
        with pytest.raises(ValueError):
            path_math.path_buckets_many([1 << depth], depth)
        with pytest.raises(ValueError):
            path_math.deepest_common_levels([0], 1 << depth, depth)

    def test_fallback_and_numpy_agree(self, monkeypatch):
        """Direct cross-check: same inputs through both implementations."""
        if path_math._np is None:  # pragma: no cover - numpy is baked in
            pytest.skip("numpy not installed")
        depth, leaves = 7, [0, 1, 63, 64, 127, 127, 42]
        bids = list(range(40)) + [1000, 2**13]
        fast = (_as_list(path_math.path_buckets_many(leaves, depth)),
                _as_list(path_math.buckets_on_path(bids, 99, depth)),
                _as_list(path_math.deepest_common_levels(leaves, 64, depth)),
                _as_list(path_math.eviction_paths(5, 40, depth)))
        monkeypatch.setattr(path_math, "_np", None)
        slow = (path_math.path_buckets_many(leaves, depth),
                path_math.buckets_on_path(bids, 99, depth),
                path_math.deepest_common_levels(leaves, 64, depth),
                path_math.eviction_paths(5, 40, depth))
        assert fast == slow


PAYLOADS = st.lists(st.binary(min_size=0, max_size=56), min_size=0, max_size=12)


class TestBatchedCryptoEquivalence:
    @given(PAYLOADS, st.booleans())
    @settings(deadline=None)
    def test_encrypt_many_roundtrips_like_encrypt(self, payloads, authenticated):
        suite = CipherSuite(key=b"p" * 32, block_size=64,
                            authenticated=authenticated)
        contexts = [freshness_context(0, 1, slot)
                    for slot in range(len(payloads))]
        blobs = suite.encrypt_many(payloads, contexts)
        # Batch-encrypted blobs open per-slot and batch-decrypt identically.
        assert [suite.decrypt(blob, ctx) for blob, ctx in zip(blobs, contexts)] \
            == payloads
        assert suite.decrypt_many(blobs, contexts) == payloads

    @given(PAYLOADS)
    @settings(deadline=None)
    def test_decrypt_many_accepts_per_slot_ciphertexts(self, payloads):
        suite = CipherSuite(key=b"q" * 32, block_size=64)
        contexts = [freshness_context(2, 3, slot)
                    for slot in range(len(payloads))]
        blobs = [suite.encrypt(p, ctx) for p, ctx in zip(payloads, contexts)]
        assert suite.decrypt_many(blobs, contexts) == payloads

    @given(st.lists(st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 2)),
        st.binary(min_size=0, max_size=50)), min_size=0, max_size=10))
    @settings(deadline=None)
    def test_seal_blocks_matches_seal_block(self, pairs):
        suite = CipherSuite(key=b"r" * 32, block_size=64)
        entries = [(bid, b"" if bid is None else value,
                    freshness_context(1, 4, slot))
                   for slot, (bid, value) in enumerate(pairs)]
        sealed = suite.seal_blocks(entries)
        opened = suite.open_blocks(sealed, [ctx for _, _, ctx in entries])
        assert opened == [(bid, value) for bid, value, _ in entries]
        for blob, (bid, value, ctx) in zip(sealed, entries):
            assert suite.open_block(blob, ctx) == (bid, value)

    @given(PAYLOADS.filter(bool), st.data())
    @settings(deadline=None)
    def test_any_tampered_blob_fails_batch_verification(self, payloads, data):
        suite = CipherSuite(key=b"s" * 32, block_size=64)
        blobs = suite.encrypt_many(payloads)
        victim = data.draw(st.integers(min_value=0, max_value=len(blobs) - 1))
        byte = data.draw(st.integers(min_value=0, max_value=len(blobs[victim]) - 1))
        tampered = bytearray(blobs[victim])
        tampered[byte] ^= 0xFF
        blobs[victim] = bytes(tampered)
        with pytest.raises(IntegrityError):
            suite.decrypt_many(blobs)
