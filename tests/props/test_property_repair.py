"""Property-based tests for the conflict-repair strategy.

The core properties, over random contended program sets on every
shards x proxy_workers topology:

* **Repaired histories are serializable.**  A run under
  ``conflict_strategy="repair"`` produces a committed history on which the
  streaming auditor and the offline cycle checker agree — and both say yes.
* **Repair converges to the same state as retry.**  For the same seed and
  program set, a repair-mode run and a retry-mode run that both commit every
  program leave the engine in the identical final key/value state (the
  programs are SmallBank-style transfers and YCSB-style read-modify-writes,
  whose effects are additive, so any serializable order of the full program
  set yields one state).
* **Accounting closes.**  ``committed + aborted`` equals total attempts
  (programs reaching a verdict plus re-queued retries), repair counters
  never exceed their bounding outcome counters, and per-reason abort
  breakdowns sum to the abort total — including across a mid-run
  crash/recover.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, PoissonArrivals, create_engine
from repro.audit import AuditingObserver
from repro.concurrency import check_serializable
from repro.core.client import ReadMany, Write

NUM_KEYS = 12

#: The shards x proxy_workers grid every property sweeps.
TOPOLOGIES = [(1, 1), (1, 4), (4, 1), (4, 4)]


def build_engine(seed, strategy, shards=1, workers=1, durability=False):
    config = (EngineConfig()
              .with_oram(num_blocks=256, z_real=4, block_size=96)
              .with_batching(read_batches=3, read_batch_size=8,
                             write_batch_size=8)
              .with_sharding(shards)
              .with_proxy_workers(workers)
              .with_backend("dummy")
              .with_durability(durability)
              .with_encryption(False)
              .with_conflict_strategy(strategy)
              .with_seed(seed))
    engine = create_engine("obladi", config)
    engine.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
    return engine


def contended_programs(workload_seed, count, hot_keys=5):
    """``count`` factories of random SmallBank/YCSB-shaped programs.

    "smallbank": a transfer — read two hot accounts, move a random amount
    (additive on both sides).  "ycsb": a read-modify-write — read one hot
    key, add a random delta.  Both commute under addition, so every
    serializable execution of the full set reaches the same final state —
    which is exactly what lets the retry-vs-repair state comparison below
    be an equality instead of a weaker invariant.
    """
    rng = random.Random(workload_seed)
    factories = []
    for _ in range(count):
        kind = rng.choice(("smallbank", "ycsb"))
        if kind == "smallbank":
            src, dst = rng.sample(range(hot_keys), 2)
            amount = rng.randrange(1, 50)

            def factory(src=src, dst=dst, amount=amount):
                def program():
                    values = yield ReadMany([f"k{src}", f"k{dst}"])
                    balance_src = int(values[f"k{src}"] or b"0")
                    balance_dst = int(values[f"k{dst}"] or b"0")
                    yield Write(f"k{src}", str(balance_src - amount).encode())
                    yield Write(f"k{dst}", str(balance_dst + amount).encode())
                    return amount
                return program()
        else:
            key = rng.randrange(hot_keys)
            delta = rng.randrange(1, 50)

            def factory(key=key, delta=delta):
                def program():
                    values = yield ReadMany([f"k{key}"])
                    value = int(values[f"k{key}"] or b"0")
                    yield Write(f"k{key}", str(value + delta).encode())
                    return delta
                return program()
        factories.append(factory)
    return factories


def read_back_state(engine):
    """The engine's final key/value state, via one read-only transaction."""
    keys = [f"k{i}" for i in range(NUM_KEYS)]

    def program():
        values = yield ReadMany(keys)
        return dict(values)

    result = engine.submit(lambda: program())
    assert result.committed, result.abort_reason
    return result.return_value


def check_accounting(stats, submitted, complete=True):
    """The accounting identities every run must satisfy.

    ``complete`` distinguishes runs that drained their offered load from
    runs truncated by ``max_waves`` (where a final-wave retry may be left
    unattempted, weakening the equality to ``<=``).
    """
    assert stats.committed + stats.aborted == len(stats.results)
    if complete:
        assert stats.committed + stats.aborted == submitted + stats.retries
    else:
        assert stats.committed + stats.aborted <= submitted + stats.retries
    assert stats.repaired <= stats.committed
    assert stats.repair_failed <= stats.aborted
    assert stats.wasted_attempts == stats.aborted + stats.repair_failed
    assert sum(stats.aborts_by_reason.values()) == stats.aborted


class TestRepairProperties:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16))
    def test_repaired_histories_serializable_across_topologies(self, seed):
        """Streaming and offline verdicts agree — and certify — repair runs."""
        for shards, workers in TOPOLOGIES:
            engine = build_engine(seed, "repair", shards, workers)
            engine.attach_observer(AuditingObserver(settle_lag=2))
            programs = iter(contended_programs(seed, 24))
            stats = engine.run_closed_loop(lambda: next(programs), 24,
                                           clients=6, max_retries=10)
            offline_ok, offline_cycle = check_serializable(
                engine.committed_history)
            label = f"shards={shards} workers={workers}"
            assert offline_ok, (label, offline_cycle)
            assert stats.audit.ok == offline_ok, (label,
                                                  stats.audit.violations[:1])
            assert stats.audit.txns_ingested == len(engine.committed_history)
            check_accounting(stats, submitted=24)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), st.sampled_from(TOPOLOGIES))
    def test_final_state_matches_retry_mode(self, seed, topology):
        """Same seed + program set => same final state, either strategy."""
        shards, workers = topology
        states = {}
        outcomes = {}
        for strategy in ("retry", "repair"):
            engine = build_engine(seed, strategy, shards, workers)
            programs = iter(contended_programs(seed, 20))
            stats = engine.run_closed_loop(lambda: next(programs), 20,
                                           clients=5, max_retries=40)
            # The state comparison is only meaningful if both runs commit
            # the full program set; generous retries make that certain.
            assert stats.aborted == stats.retries, (
                f"{strategy}: a program exhausted its retries")
            assert stats.committed == 20, strategy
            check_accounting(stats, submitted=20)
            states[strategy] = read_back_state(engine)
            outcomes[strategy] = stats
        assert states["retry"] == states["repair"], topology
        # Retry mode never reports repair activity; its counters are the
        # structural zero the byte-identity pin relies on.
        assert outcomes["retry"].repaired == 0
        assert outcomes["retry"].repair_failed == 0

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16))
    def test_accounting_closes_across_crash_recover(self, seed):
        """Repair-mode accounting holds through a mid-run crash/recover."""
        for shards, workers in TOPOLOGIES:
            engine = build_engine(seed, "repair", shards, workers,
                                  durability=True)
            engine.attach_observer(AuditingObserver(settle_lag=2))
            first_set = contended_programs(seed, 16)
            programs = iter(first_set)
            first = engine.run_open_loop(
                lambda: next(programs),
                16, arrivals=PoissonArrivals(800.0, seed=seed), clients=4,
                max_waves=2)
            check_accounting(first, submitted=first.offered - first.dropped,
                             complete=False)
            engine.crash()
            engine.recover()
            second_set = contended_programs(seed + 1, 12)
            programs = iter(second_set)
            second = engine.run_open_loop(
                lambda: next(programs),
                12, arrivals=PoissonArrivals(800.0, seed=seed + 1), clients=4)
            check_accounting(second,
                             submitted=second.offered - second.dropped)
            # Lifetime stats survive the crash: committed totals accumulate
            # and the per-reason breakdown still sums to the abort total.
            lifetime = engine.stats()
            assert lifetime.committed == first.committed + second.committed
            assert sum(lifetime.aborts_by_reason.values()) == lifetime.aborted
            assert lifetime.repaired >= second.repaired
            offline_ok, cycle = check_serializable(engine.committed_history)
            assert offline_ok, (shards, workers, cycle)
            assert second.audit.ok, (shards, workers,
                                     second.audit.violations[:1])
