"""Property-based tests for elastic topologies (``repro.elasticity``).

Four families of properties, each over randomly drawn reshard plans injected
mid-run across the topology grid shards {1, 4} x storage servers {1, 2} x
proxy workers {1, 4}:

* **Audit equivalence.**  A live reshard never breaks serializability, and
  the streaming auditor's verdict over a resharding run agrees with the
  offline cycle check on the same committed history.
* **State equivalence.**  The same wave schedule produces the same
  transaction outcomes and the same final database state whether the
  topology reshards mid-run or stays static — migration moves data, it
  never changes answers.
* **Obliviousness during the migration window.**  Each storage node's view,
  split per topology generation, stays workload independent while the copy
  runs: padded read batches at the configuration's quota, identical batch
  patterns for different logical workloads, and small total-variation
  distance between their path distributions.
* **Determinism.**  With fixed engine, workload and arrival seeds, an
  autoscaled open-loop run — controller decisions and migration reports
  included — is byte-identical across repetitions.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import generation_traces, server_traces, trace_similarity
from repro.api import EngineConfig, create_engine
from repro.audit import AuditingObserver
from repro.concurrency import check_serializable
from repro.core.client import Read, Write
from repro.elasticity import (AutoscalePolicy, FlashCrowdArrivals, ReshardPlan)

NUM_KEYS = 32

#: The property grid: (shards, storage_servers, proxy_workers) topologies
#: with servers <= shards (a server per partition is the upper bound).
TOPOLOGIES = [(1, 1, 1), (4, 1, 1), (4, 2, 1),
              (1, 1, 4), (4, 1, 4), (4, 2, 4)]

topology = st.sampled_from(TOPOLOGIES)


def build_engine(seed, topology=(1, 1, 1), durability=False, autoscale=None):
    shards, storage_servers, proxy_workers = topology
    config = (EngineConfig()
              .with_oram(num_blocks=256, z_real=4, block_size=96)
              .with_batching(read_batches=3, read_batch_size=8,
                             write_batch_size=8)
              .with_sharding(shards)
              .with_storage_servers(storage_servers)
              .with_proxy_workers(proxy_workers)
              .with_backend("dummy")
              .with_durability(durability)
              .with_encryption(False)
              .with_seed(seed))
    if autoscale is not None:
        config = config.with_autoscale(autoscale)
    engine = create_engine("obladi", config)
    engine.load_initial_data({f"k{i}": f"init-{i}".encode()
                              for i in range(NUM_KEYS)})
    return engine


def rmw_factory(key, new_value):
    def program():
        value = yield Read(key)
        yield Write(key, new_value)
        return value
    return program


def read_factory(key):
    def program():
        value = yield Read(key)
        return value
    return program


def wave_keys(rng, hot_keys, per_wave=2):
    """Distinct keys for one wave (capped so no partition quota overflows)."""
    return list(dict.fromkeys(
        f"k{rng.randrange(hot_keys)}" for _ in range(per_wave)))


def drive_until_migrated(engine, rng, hot_keys=NUM_KEYS, extra_waves=2,
                         max_waves=40):
    """Submit read-only waves until the in-flight migration completes."""
    waves = 0
    while engine.reshard_in_flight and waves < max_waves:
        engine.submit_many([read_factory(key)
                            for key in wave_keys(rng, hot_keys)])
        waves += 1
    assert not engine.reshard_in_flight, "migration never completed"
    for _ in range(extra_waves):
        engine.submit_many([read_factory(key)
                            for key in wave_keys(rng, hot_keys)])
        waves += 1
    return waves


class TestAuditEquivalence:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), topology, topology,
           st.integers(min_value=1, max_value=4))
    def test_streaming_verdict_matches_offline_check_across_reshard(
            self, seed, source, target, reshard_wave):
        """A run that reshards mid-flight stays serializable, and the
        streaming auditor and the offline cycle check agree on it."""
        engine = build_engine(seed, topology=source)
        audit = AuditingObserver()
        engine.attach_observer(audit)
        rng = random.Random(seed)

        for wave in range(reshard_wave):
            keys = wave_keys(rng, hot_keys=8)
            engine.submit_many([rmw_factory(key, b"w%d" % wave)
                                for key in keys])
        if source != target:
            engine.reshard(ReshardPlan(shards=target[0],
                                       storage_servers=target[1],
                                       proxy_workers=target[2]))
        for wave in range(6):
            keys = wave_keys(rng, hot_keys=8)
            engine.submit_many([rmw_factory(key, b"x%d" % wave)
                                for key in keys])
        drive_until_migrated(engine, rng)

        offline_ok, cycle = check_serializable(engine.committed_history)
        assert audit.ok == offline_ok
        assert offline_ok, f"resharding run has a serialization cycle: {cycle}"


class TestStateEquivalence:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), topology, topology,
           st.integers(min_value=0, max_value=3))
    def test_resharded_run_equals_static_run(self, seed, source, target,
                                             reshard_wave):
        """The identical wave schedule on a resharding engine and on a
        static engine at the source topology: same per-transaction outcomes
        (commit flags and return values) and same final state on every key."""
        rng = random.Random(seed)
        waves = [wave_keys(rng, hot_keys=NUM_KEYS) for _ in range(12)]

        outcomes = {}
        for mode in ("static", "elastic"):
            engine = build_engine(seed, topology=source)
            observed = []
            for index, keys in enumerate(waves):
                if mode == "elastic" and index == reshard_wave \
                        and source != target:
                    engine.reshard(ReshardPlan(shards=target[0],
                                               storage_servers=target[1],
                                               proxy_workers=target[2]))
                results = engine.submit_many(
                    [rmw_factory(key, b"v%d" % index) for key in keys])
                observed.extend((key, result.committed, result.return_value)
                                for key, result in zip(keys, results))
            if mode == "elastic":
                # Drain any still-running migration with empty waves so the
                # elastic engine reaches its target before the comparison.
                spins = 0
                while engine.reshard_in_flight and spins < 40:
                    engine.submit_many([read_factory("k0")])
                    spins += 1
                assert not engine.reshard_in_flight
            outcomes[mode] = (observed,
                              {f"k{i}": engine.read(f"k{i}")
                               for i in range(NUM_KEYS)})

        static_results, static_state = outcomes["static"]
        elastic_results, elastic_state = outcomes["elastic"]
        assert static_results == elastic_results
        # The drain waves only read k0, so they perturb no value: the final
        # states must agree key for key.
        assert static_state == elastic_state


class TestMigrationWindowObliviousness:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16),
           st.sampled_from([((1, 1, 1), (4, 2, 1)), ((4, 2, 1), (1, 1, 1)),
                            ((4, 1, 1), (4, 2, 4))]))
    def test_per_node_views_stay_workload_independent_during_migration(
            self, seed, endpoints):
        """Uniform vs hot-key read workloads driven through the *same*
        migration window: every storage node's view — split per topology
        generation, since the adversary can tell the namespaces apart —
        shows the identical padded batch pattern for both workloads, and
        their ORAM path distributions stay close in total variation."""
        source, target = endpoints
        views = {}
        depths = {}
        for label, hot in (("uniform", NUM_KEYS), ("hot", 4)):
            engine = build_engine(seed, topology=source)
            storage = engine.proxy.storage
            if hasattr(storage, "clear_traces"):
                storage.clear_traces()
            else:
                storage.trace.clear()
            depths[0] = engine.proxy.data_layer.partitions[0].oram.params.depth
            engine.reshard(ReshardPlan(shards=target[0],
                                       storage_servers=target[1],
                                       proxy_workers=target[2]))
            rng = random.Random(seed + 1)
            drive_until_migrated(engine, rng, hot_keys=hot, extra_waves=3)
            depths[1] = engine.proxy.data_layer.partitions[0].oram.params.depth
            views[label] = {
                server: generation_traces(trace)
                for server, trace in server_traces(engine.proxy.storage).items()}

        assert set(views["uniform"]) == set(views["hot"])
        compared = 0
        for server in views["uniform"]:
            generations_u = views["uniform"][server]
            generations_h = views["hot"][server]
            assert set(generations_u) == set(generations_h), f"server {server}"
            for generation in generations_u:
                trace_u = generations_u[generation]
                trace_h = generations_h[generation]
                # Padded shape: identical batch patterns for both workloads.
                shape_u = trace_u.batch_shape()
                shape_h = trace_h.batch_shape()
                assert [kind for kind, _ in shape_u] == \
                    [kind for kind, _ in shape_h], \
                    f"server {server} generation {generation}"
                assert [size for _, size in shape_u] == \
                    [size for _, size in shape_h], \
                    f"server {server} generation {generation}"
                # TV-distance bar between the path distributions.
                depth = depths[min(generation, 1)]
                distance = trace_similarity(trace_u, trace_h, depth)
                assert distance < 0.35, (
                    f"server {server} generation {generation} leaks its "
                    f"workload: TV distance {distance:.3f}")
                compared += 1
        assert compared >= 2, "expected at least two (server, generation) views"


class TestAutoscaledDeterminism:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), st.integers(0, 2**16))
    def test_fixed_seeds_make_autoscaled_run_stats_byte_identical(
            self, seed, arrival_seed):
        """Two autoscaled open-loop runs from identical seeds agree on the
        entire RunStats — and on every controller decision and migration
        report, which repr/== deliberately exclude."""
        policy = AutoscalePolicy(ladder=((1, 1, 1), (4, 1, 4)),
                                 queue_high=4, queue_low=0,
                                 patience=1, cooldown=2)
        arrivals = FlashCrowdArrivals(base_tps=200.0, spike_tps=1500.0,
                                      spike_start_ms=5.0,
                                      spike_duration_ms=1500.0,
                                      seed=arrival_seed)

        def run_once():
            engine = build_engine(seed, autoscale=policy)
            rng = random.Random(seed + 5)

            def source():
                key = f"k{rng.randrange(NUM_KEYS)}"
                return rmw_factory(key, b"openloop")

            return engine.run_open_loop(source, 160, arrivals=arrivals,
                                        clients=4, queue_limit=8)

        first, second = run_once(), run_once()
        assert repr(first) == repr(second)
        assert first == second
        assert first.controller is not None and second.controller is not None
        assert first.controller == second.controller
        assert first.controller.decisions == second.controller.decisions
        assert first.migrations == second.migrations
        assert first.controller.waves == first.epochs
        # The spike is sized to always trip the ladder: the comparison above
        # covers real decisions (and usually a completed migration window),
        # not two trivially empty reports.
        assert len(first.controller.decisions) >= 1
