"""Property-based tests for the streaming serializability auditor.

The core property: on any history a real engine produces — any seed, any
arrival process, any shards x proxy_workers topology, with or without a
crash/recover in the middle (exercising the ``fast_forward`` timestamp
hand-off) — the streaming auditor's verdict equals the offline
``check_serializable`` verdict, while retaining only a bounded window of
the history.  And on corrupted histories (the ``buggy`` engine) both
checkers must reject, with every cycle the auditor reports being a genuine
cycle of the offline DSG.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, PoissonArrivals, create_engine
from repro.audit import AuditingObserver
from repro.concurrency import build_serialization_graph, check_serializable
from repro.core.client import Read, Write

NUM_KEYS = 16

#: The shards x proxy_workers grid every property sweeps.
TOPOLOGIES = [(1, 1), (1, 4), (4, 1), (4, 4)]


def build_engine(kind, seed, shards=1, workers=1, durability=False):
    config = (EngineConfig()
              .with_oram(num_blocks=256, z_real=4, block_size=96)
              .with_batching(read_batches=3, read_batch_size=8,
                             write_batch_size=8)
              .with_sharding(shards)
              .with_proxy_workers(workers)
              .with_backend("dummy")
              .with_durability(durability)
              .with_encryption(False)
              .with_seed(seed))
    if kind == "buggy":
        config = config.with_faults(period=3, fault_seed=seed)
    engine = create_engine(kind, config)
    engine.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
    return engine


def rmw_source(workload_seed, hot_keys=6):
    rng = random.Random(workload_seed)

    def source():
        src, dst = rng.randrange(hot_keys), rng.randrange(hot_keys)

        def factory():
            def program():
                value = yield Read(f"k{src}")
                yield Write(f"k{dst}", (value or b"")[:4] + b"!")
                return value
            return program()

        return factory

    return source


class TestStreamingMatchesOffline:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), st.integers(0, 2**16))
    def test_verdict_matches_offline_across_topologies(self, seed, arrival_seed):
        for shards, workers in TOPOLOGIES:
            engine = build_engine("obladi", seed, shards, workers)
            auditor = engine.attach_observer(AuditingObserver(settle_lag=2))
            stats = engine.run_open_loop(
                rmw_source(seed), 24,
                arrivals=PoissonArrivals(600.0, seed=arrival_seed), clients=6)
            report = stats.audit
            offline_ok, offline_cycle = check_serializable(
                engine.committed_history)
            label = f"shards={shards} workers={workers}"
            assert report.ok == offline_ok, (label, offline_cycle)
            assert report.txns_ingested == len(engine.committed_history), label
            assert report.max_retained_nodes <= report.txns_ingested, label

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16))
    def test_verdict_matches_offline_across_crash_recover(self, seed):
        """Histories spanning a proxy crash: ``fast_forward`` keeps the
        recovered incarnation's timestamps extending the old order, so the
        combined lifetime history must audit clean — streaming and offline
        agreeing — on every topology."""
        for shards, workers in TOPOLOGIES:
            engine = build_engine("obladi", seed, shards, workers,
                                  durability=True)
            auditor = engine.attach_observer(AuditingObserver(settle_lag=2))
            first = engine.run_open_loop(
                rmw_source(seed), 16,
                arrivals=PoissonArrivals(800.0, seed=seed), clients=4,
                max_waves=2)
            engine.crash()
            engine.recover()
            second = engine.run_open_loop(
                rmw_source(seed + 1), 12,
                arrivals=PoissonArrivals(800.0, seed=seed + 1), clients=4)
            report = second.audit
            offline_ok, offline_cycle = check_serializable(
                engine.committed_history)
            label = f"shards={shards} workers={workers}"
            assert offline_ok, (label, offline_cycle)
            assert report.ok, (label, report.violations[:1])
            assert report.txns_ingested == len(engine.committed_history) \
                == first.committed + second.committed, label

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16))
    def test_retained_window_stays_bounded_on_long_runs(self, seed):
        """A multi-epoch open-loop run must not accumulate the whole history
        in the auditor: the high-water mark stays a small multiple of the
        wave size times the settle lag, far below the committed total."""
        engine = build_engine("obladi", seed)
        auditor = engine.attach_observer(AuditingObserver(settle_lag=2))
        stats = engine.run_open_loop(
            rmw_source(seed, hot_keys=NUM_KEYS), 120,
            arrivals=PoissonArrivals(2000.0, seed=seed), clients=8)
        report = stats.audit
        assert report.ok
        assert report.txns_ingested == stats.committed
        wave_cap = engine.open_loop_wave_limit()
        window = (auditor.graph.settle_lag + 1) * wave_cap
        assert report.max_retained_nodes <= window
        assert report.max_retained_nodes < report.txns_ingested / 2
        assert report.txns_settled > report.txns_ingested / 2

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), st.sampled_from(TOPOLOGIES))
    def test_corrupted_histories_rejected_by_both_checkers(self, seed, topology):
        shards, workers = topology
        engine = build_engine("buggy", seed, shards, workers)
        auditor = engine.attach_observer(AuditingObserver(settle_lag=3))
        stats = engine.run_closed_loop(rmw_source(seed), 36, clients=6)
        if not engine.injected:      # rare: no eligible victim arose
            assert stats.audit.ok
            return
        assert not stats.audit.ok
        offline = build_serialization_graph(engine.committed_history)
        assert offline.find_cycle() is not None
        # Any cycle the auditor reports is a genuine offline cycle.
        for violation in stats.audit.violations:
            if violation.cycle:
                for src, dst in zip(violation.cycle,
                                    violation.cycle[1:] + violation.cycle[:1]):
                    assert dst in offline.edges[src]
