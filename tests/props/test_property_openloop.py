"""Property-based tests for the open-loop load generator.

Two families of properties:

* **Obliviousness is load-independent.**  The adversary-visible schedule —
  per partition namespace and per storage server — is a function of the
  configuration, never of the workload *or of how load arrives*: whatever
  arrival process drives the proxy, every dispatched epoch still shows the
  padded fixed-shape batches, and two different logical workloads offered
  through the same arrival process are indistinguishable node by node.
* **A fixed arrival seed is total determinism.**  The arrival process is
  the only new randomness the open loop introduces; with a fixed
  ``arrival_seed`` (and engine seed) the entire ``RunStats`` — every
  latency sample, queue delay, counter and result — is byte-identical
  across two runs.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import partition_traces, server_traces
from repro.api import EngineConfig, PoissonArrivals, create_engine
from repro.core.client import Read, Write

NUM_KEYS = 32
SHARDS = 2


def build_engine(seed, shards=1, storage_servers=1):
    config = (EngineConfig()
              .with_oram(num_blocks=256, z_real=4, block_size=96)
              .with_batching(read_batches=3, read_batch_size=8,
                             write_batch_size=8)
              .with_sharding(shards)
              .with_storage_servers(storage_servers)
              .with_backend("dummy")
              .with_durability(False)
              .with_encryption(False)
              .with_seed(seed))
    engine = create_engine("obladi", config)
    engine.load_initial_data({f"k{i}": f"init-{i}".encode()
                              for i in range(NUM_KEYS)})
    return engine


def rmw_source(workload_seed, hot_keys):
    """Read-modify-write factory source over ``hot_keys`` random keys."""
    rng = random.Random(workload_seed)

    def source():
        key = f"k{rng.randrange(hot_keys)}"

        def factory():
            def program():
                value = yield Read(key)
                yield Write(key, (value or b"") + b"!")
                return value
            return program()

        return factory

    return source


def clear_traces(engine):
    storage = engine.proxy.storage
    if hasattr(storage, "clear_traces"):
        storage.clear_traces()
    else:
        storage.trace.clear()


class TestOpenLoopObliviousness:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), st.integers(0, 2**16),
           st.floats(min_value=50.0, max_value=5000.0))
    def test_per_partition_shape_is_arrival_and_workload_independent(
            self, seed, arrival_seed, rate_tps):
        """Whatever Poisson rate offers the load and whatever keys it
        touches, every epoch fans out as padded per-partition batches: R
        read batches *per partition* at exactly the per-partition quota,
        then one write batch per partition — and both namespaces carry
        traffic.  (Batch boundaries interleave on the shared server, so the
        shape is asserted on the shared trace; ``partition_traces`` splits
        the request streams themselves.)"""
        engine = build_engine(seed, shards=SHARDS)
        clear_traces(engine)
        run = engine.run_open_loop(
            rmw_source(seed, hot_keys=NUM_KEYS), 12,
            arrivals=PoissonArrivals(rate_tps, seed=arrival_seed),
            clients=4, max_retries=0)
        assert run.committed + run.aborted == run.offered
        config = engine.proxy.config
        shape = engine.proxy.storage.trace.batch_shape()
        kinds = [kind for kind, _ in shape]
        assert kinds == ((["read"] * SHARDS) * config.read_batches
                         + ["write"] * SHARDS) * run.epochs
        read_sizes = {size for kind, size in shape if kind == "read"}
        assert read_sizes == {config.partition_read_batch_size}
        split = partition_traces(engine.proxy.storage.trace)
        assert set(split) == set(range(SHARDS))
        for index, sub in split.items():
            assert len(sub.events) > 0, f"partition {index} observed nothing"

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), st.integers(0, 2**16))
    def test_per_server_view_is_workload_independent_under_open_loop(
            self, seed, arrival_seed):
        """Uniform vs hot-key workloads offered through the *same* arrival
        process onto one server per partition: every node's own view shows
        the identical batch pattern (kind sequence and padded read sizes).
        ``max_retries=0`` keeps the wave count workload-independent, so the
        full shapes are comparable batch for batch."""
        arrivals = PoissonArrivals(400.0, seed=arrival_seed)
        views = {}
        quota = None
        for label, hot in (("uniform", NUM_KEYS), ("hot", 3)):
            engine = build_engine(seed, shards=SHARDS, storage_servers=SHARDS)
            quota = engine.proxy.config.partition_read_batch_size
            clear_traces(engine)
            engine.run_open_loop(rmw_source(seed + 1, hot_keys=hot), 10,
                                 arrivals=arrivals, clients=4, max_retries=0)
            views[label] = server_traces(engine.proxy.storage)
        assert set(views["uniform"]) == set(views["hot"]) == set(range(SHARDS))
        for server in range(SHARDS):
            shape_uniform = views["uniform"][server].batch_shape()
            shape_hot = views["hot"][server].batch_shape()
            assert shape_uniform, f"server {server} observed nothing"
            assert [kind for kind, _ in shape_uniform] == \
                [kind for kind, _ in shape_hot], f"server {server}"
            for shape in (shape_uniform, shape_hot):
                read_sizes = {size for kind, size in shape if kind == "read"}
                assert read_sizes == {quota}, f"server {server}"


class TestOpenLoopDeterminism:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16), st.integers(0, 2**16))
    def test_fixed_arrival_seed_makes_run_stats_byte_identical(
            self, seed, arrival_seed):
        """Two runs from identical engine and arrival seeds agree on the
        *entire* RunStats — repr equality pins every sample and counter."""
        runs = []
        for _ in range(2):
            engine = build_engine(seed, shards=SHARDS)
            runs.append(engine.run_open_loop(
                rmw_source(seed + 7, hot_keys=6), 14,
                arrivals=PoissonArrivals(600.0, seed=arrival_seed),
                clients=4))
        first, second = runs
        assert repr(first) == repr(second)
        assert first == second
        assert first.queue_delays_ms == second.queue_delays_ms
        assert first.max_queue_depth == second.max_queue_depth

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 2**16))
    def test_different_arrival_seeds_change_arrivals_not_integrity(self, seed):
        """Perturbing only the arrival seed re-times the load but never
        breaks the accounting identity or the final state's consistency."""
        totals = []
        for arrival_seed in (1, 2):
            engine = build_engine(seed)
            run = engine.run_open_loop(
                rmw_source(seed + 3, hot_keys=6), 12,
                arrivals=PoissonArrivals(300.0, seed=arrival_seed), clients=4)
            assert run.committed + run.aborted == \
                (run.offered - run.dropped) + run.retries
            # Every committed transaction appended exactly one byte to one
            # of the six hot keys.
            appended = sum(len(engine.read(f"k{i}") or b"") - len(f"init-{i}")
                           for i in range(6))
            assert appended == run.committed
            totals.append(run.committed)
        assert all(count > 0 for count in totals)
