"""Tests for the YCSB workload generator."""

import pytest

from repro.workloads.ycsb import YCSBConfig, YCSBWorkload, ZipfianGenerator


class TestConfig:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            YCSBConfig(read_proportion=0.9, update_proportion=0.5)

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            YCSBConfig(distribution="latest")


class TestKeyGeneration:
    def test_initial_data_covers_all_records(self):
        workload = YCSBWorkload(YCSBConfig(num_records=50))
        data = workload.initial_data()
        assert len(data) == 50
        assert "ycsb:0" in data and "ycsb:49" in data

    def test_value_size_approximate(self):
        workload = YCSBWorkload(YCSBConfig(num_records=10, value_size=200))
        assert 150 <= len(workload.value(1)) <= 260

    def test_key_stream_within_population(self):
        workload = YCSBWorkload(YCSBConfig(num_records=100, seed=1))
        keys = workload.key_stream(500)
        assert len(keys) == 500
        assert all(0 <= int(k.split(":")[1]) < 100 for k in keys)

    def test_uniform_distribution_spreads_keys(self):
        workload = YCSBWorkload(YCSBConfig(num_records=10, seed=2))
        indexes = workload.block_id_stream(5000)
        counts = [indexes.count(i) for i in range(10)]
        assert min(counts) > 300

    def test_zipfian_skews_towards_few_keys(self):
        workload = YCSBWorkload(YCSBConfig(num_records=1000, distribution="zipfian", seed=3))
        indexes = workload.block_id_stream(5000)
        from collections import Counter
        top = Counter(indexes).most_common(10)
        top_share = sum(count for _idx, count in top) / 5000
        assert top_share > 0.25

    def test_generation_is_deterministic_per_seed(self):
        a = YCSBWorkload(YCSBConfig(num_records=100, seed=9)).key_stream(50)
        b = YCSBWorkload(YCSBConfig(num_records=100, seed=9)).key_stream(50)
        assert a == b

    def test_zipfian_generator_bounds(self):
        import random
        gen = ZipfianGenerator(50, 0.99, random.Random(1))
        assert all(0 <= gen.next_index() < 50 for _ in range(2000))


class TestOperationsAndTransactions:
    def test_operation_mix_roughly_matches_proportions(self):
        workload = YCSBWorkload(YCSBConfig(num_records=100, read_proportion=0.8,
                                           update_proportion=0.2, seed=5))
        ops = workload.operation_stream(2000)
        reads = sum(1 for op, _k, _v in ops if op == "read")
        assert 0.7 < reads / 2000 < 0.9

    def test_update_operations_carry_values(self):
        workload = YCSBWorkload(YCSBConfig(num_records=10, read_proportion=0.0,
                                           update_proportion=1.0, seed=1))
        ops = workload.operation_stream(10)
        assert all(value is not None for _op, _k, value in ops)

    def test_transaction_factory_program_runs(self):
        workload = YCSBWorkload(YCSBConfig(num_records=20, ops_per_transaction=3, seed=4))
        program = workload.transaction_factory()()
        operation = program.send(None)
        # Either a ReadMany of all read keys, or a Write if the mix chose all
        # updates for this transaction.
        from repro.core.client import ReadMany, Write
        assert isinstance(operation, (ReadMany, Write))

    def test_transaction_factories_count(self):
        workload = YCSBWorkload(YCSBConfig(num_records=20))
        assert len(workload.transaction_factories(7)) == 7
