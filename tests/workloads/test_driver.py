"""Tests for the closed-loop workload drivers."""

import pytest

from repro.baseline.nopriv import NoPrivProxy
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy
from repro.workloads.driver import (WorkloadRun, generate_mixed_factory_source,
                                    run_baseline_closed_loop, run_obladi_closed_loop)
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload


@pytest.fixture
def smallbank():
    return SmallBankWorkload(SmallBankConfig(num_accounts=60, seed=5))


@pytest.fixture
def obladi(smallbank):
    config = ObladiConfig(
        oram=RingOramConfig(num_blocks=512, z_real=8, block_size=192),
        read_batches=3, read_batch_size=24, write_batch_size=24,
        backend="server", durability=False, seed=2,
    )
    proxy = ObladiProxy(config)
    proxy.load_initial_data(smallbank.initial_data())
    return proxy


class TestDeprecationShim:
    def test_obladi_driver_warns_and_points_at_create_engine(self, obladi, smallbank):
        with pytest.warns(DeprecationWarning, match=r"repro\.api\.create_engine"):
            run_obladi_closed_loop(obladi, smallbank.transaction_factory,
                                   total_transactions=4, clients=2)

    def test_baseline_driver_warns_and_points_at_create_engine(self, smallbank):
        baseline = NoPrivProxy(backend="server")
        baseline.load_initial_data(smallbank.initial_data())
        with pytest.warns(DeprecationWarning, match=r"repro\.api\.create_engine"):
            run_baseline_closed_loop(baseline, smallbank.transaction_factory,
                                     total_transactions=4, clients=2)


class TestShimForwardsTopologyStats:
    """The legacy shims delegate to the unified loop, so the new per-server
    and per-partition breakdowns must come through them unchanged."""

    def _sharded_proxy(self, smallbank, storage_servers):
        config = ObladiConfig(
            oram=RingOramConfig(num_blocks=512, z_real=8, block_size=192),
            read_batches=3, read_batch_size=24, write_batch_size=24,
            backend="server", durability=False, seed=2, encrypt=False,
            shards=4, storage_servers=storage_servers,
        )
        proxy = ObladiProxy(config)
        proxy.load_initial_data(smallbank.initial_data())
        return proxy

    def test_obladi_shim_forwards_per_server_stats(self, smallbank):
        proxy = self._sharded_proxy(smallbank, storage_servers=4)
        with pytest.warns(DeprecationWarning):
            run = run_obladi_closed_loop(proxy, smallbank.transaction_factory,
                                         total_transactions=12, clients=4)
        assert len(run.server_physical) == 4
        assert len(run.partition_physical) == 4
        # One homogeneous server per partition and no durability traffic:
        # each server observed exactly its partition's reads.
        for (server_reads, _), (part_reads, _) in zip(run.server_physical,
                                                      run.partition_physical):
            assert server_reads == part_reads
        assert sum(r for r, _ in run.server_physical) > 0

    def test_obladi_shim_reports_single_server_for_colocated(self, smallbank):
        proxy = self._sharded_proxy(smallbank, storage_servers=1)
        with pytest.warns(DeprecationWarning):
            run = run_obladi_closed_loop(proxy, smallbank.transaction_factory,
                                         total_transactions=12, clients=4)
        assert len(run.server_physical) == 1
        assert run.server_physical[0][0] == run.physical_reads

    def test_baseline_shim_forwards_server_stats(self, smallbank):
        baseline = NoPrivProxy(backend="server")
        baseline.load_initial_data(smallbank.initial_data())
        with pytest.warns(DeprecationWarning):
            run = run_baseline_closed_loop(baseline, smallbank.transaction_factory,
                                           total_transactions=12, clients=4)
        assert len(run.server_physical) == 1
        assert run.server_physical[0] == (run.physical_reads, run.physical_writes)


class TestObladiDriver:
    def test_closed_loop_commits_requested_transactions(self, obladi, smallbank):
        run = run_obladi_closed_loop(obladi, smallbank.transaction_factory,
                                     total_transactions=24, clients=6)
        assert run.committed + run.aborted >= 24
        assert run.committed > 0
        assert run.epochs >= 4
        assert run.elapsed_ms > 0
        assert run.throughput_tps > 0

    def test_latencies_collected_for_committed(self, obladi, smallbank):
        run = run_obladi_closed_loop(obladi, smallbank.transaction_factory,
                                     total_transactions=12, clients=4)
        assert len(run.latencies_ms) == run.committed
        assert run.average_latency_ms > 0

    def test_physical_work_recorded(self, obladi, smallbank):
        run = run_obladi_closed_loop(obladi, smallbank.transaction_factory,
                                     total_transactions=12, clients=4)
        assert run.physical_reads > 0
        assert run.physical_writes > 0


class TestBaselineDriver:
    def test_baseline_closed_loop(self, smallbank):
        baseline = NoPrivProxy(backend="server")
        baseline.load_initial_data(smallbank.initial_data())
        run = run_baseline_closed_loop(baseline, smallbank.transaction_factory,
                                       total_transactions=30, clients=6)
        assert run.system == "nopriv"
        assert run.engine == "nopriv"
        assert run.committed > 0
        assert run.elapsed_ms > 0

    def test_factory_source_adapter(self, smallbank):
        source = generate_mixed_factory_source(smallbank)
        program = source()()
        assert hasattr(program, "send")


class TestWorkloadRunMetrics:
    def test_workload_run_is_run_stats(self):
        from repro.api import RunStats
        assert WorkloadRun is RunStats

    def test_zero_division_guards(self):
        run = WorkloadRun(engine="x")
        assert run.throughput_tps == 0.0
        assert run.average_latency_ms == 0.0
        assert run.abort_rate == 0.0

    def test_abort_rate(self):
        run = WorkloadRun(engine="x", committed=8, aborted=2)
        assert run.abort_rate == pytest.approx(0.2)
        assert run.system == "x"
