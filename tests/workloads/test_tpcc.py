"""Tests for the TPC-C workload."""

import pytest

from repro.baseline.nopriv import NoPrivProxy
from repro.workloads.records import decode_record, make_key, record_field
from repro.workloads.tpcc import STANDARD_MIX, TPCCConfig, TPCCWorkload, last_name


@pytest.fixture
def workload():
    return TPCCWorkload(TPCCConfig(warehouses=2, districts_per_warehouse=2,
                                   customers_per_district=4, items=20,
                                   initial_orders_per_district=2, seed=1))


def run_program(program_factory, state):
    """Drive a transaction program against a plain dict state (no concurrency)."""
    from repro.core.client import AbortRequest, Read, ReadMany, Write
    program = program_factory()
    value = None
    writes = {}
    while True:
        try:
            operation = program.send(value)
        except StopIteration as stop:
            state.update(writes)
            return stop.value, writes
        if isinstance(operation, Read):
            value = writes.get(operation.key, state.get(operation.key))
        elif isinstance(operation, ReadMany):
            value = {k: writes.get(k, state.get(k)) for k in operation.keys}
        elif isinstance(operation, Write):
            writes[operation.key] = operation.value
            value = None
        elif isinstance(operation, AbortRequest):
            return None, {}
        else:
            raise AssertionError(f"unexpected operation {operation}")


class TestPopulation:
    def test_last_name_generation(self):
        assert last_name(0) == "BARBARBAR"
        assert last_name(371) == "PRICALLYOUGHT"
        assert last_name(999) == "EINGEINGEING"

    def test_initial_data_has_all_tables(self, workload):
        data = workload.initial_data()
        assert make_key("warehouse", 0) in data
        assert make_key("district", 1, 1) in data
        assert make_key("customer", 0, 0, 3) in data
        assert make_key("stock", 1, 19) in data
        assert make_key("item", 19) in data
        assert make_key("order", 0, 0, 1) in data
        assert make_key("new_order", 0, 0, 0) in data

    def test_customer_name_index_consistent(self, workload):
        data = workload.initial_data()
        for c in range(4):
            lname = record_field(data[make_key("customer", 0, 0, c)], "last")
            ids = record_field(data[make_key("cust_name_idx", 0, 0, lname)], "ids")
            assert c in ids

    def test_district_next_order_id_matches_initial_orders(self, workload):
        data = workload.initial_data()
        assert record_field(data[make_key("district", 0, 0)], "next_o_id") == 2

    def test_scale_controls_size(self):
        small = TPCCWorkload(TPCCConfig(warehouses=1, districts_per_warehouse=1,
                                        customers_per_district=2, items=5)).initial_data()
        large = TPCCWorkload(TPCCConfig(warehouses=2, districts_per_warehouse=2,
                                        customers_per_district=4, items=20)).initial_data()
        assert len(large) > len(small)


class TestTransactions:
    def test_new_order_updates_district_and_stock(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.new_order_program(warehouse=0, district=0), state)
        assert result["order"] == 2
        assert record_field(state[make_key("district", 0, 0)], "next_o_id") == 3
        assert any(key.startswith("order_line:0:0:2") for key in writes)
        assert any(key.startswith("stock:0:") for key in writes)

    def test_consecutive_new_orders_get_distinct_ids(self, workload):
        state = dict(workload.initial_data())
        first, _ = run_program(workload.new_order_program(warehouse=0, district=0), state)
        second, _ = run_program(workload.new_order_program(warehouse=0, district=0), state)
        assert second["order"] == first["order"] + 1

    def test_payment_updates_balances(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.payment_program(warehouse=0, district=1), state)
        warehouse = decode_record(state[make_key("warehouse", 0)])
        assert warehouse["ytd"] == pytest.approx(result["amount"])
        customer_key = make_key("customer", 0, 1, result["customer"])
        assert record_field(state[customer_key], "balance") < 0

    def test_order_status_reads_latest_order(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.order_status_program(), state)
        assert writes == {}            # read-only
        assert "customer" in result

    def test_delivery_consumes_new_orders(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.delivery_program(), state)
        assert isinstance(result["delivered"], list)
        if result["delivered"]:
            district, order = result["delivered"][0]
            order_key = make_key("order", result["warehouse"], district, order)
            assert record_field(state[order_key], "carrier") >= 1

    def test_stock_level_counts_low_stock(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.stock_level_program(), state)
        assert writes == {}
        assert result["low_stock"] >= 0

    def test_mix_respects_weights(self, workload):
        assert sum(STANDARD_MIX.values()) == 100
        factories = workload.transaction_factories(50)
        assert len(factories) == 50

    def test_runs_on_nopriv_baseline(self, workload):
        proxy = NoPrivProxy(backend="server")
        proxy.load_initial_data(workload.initial_data())
        result = proxy.run_transactions(workload.transaction_factories(40), clients=8)
        assert result.committed > 0
        from repro.concurrency.serializability import check_serializable
        ok, cycle = check_serializable(proxy.committed_history)
        assert ok, cycle
