"""Tests for the FreeHealth EHR workload."""

import pytest

from repro.workloads.freehealth import (STANDARD_MIX, FreeHealthConfig, FreeHealthWorkload)
from repro.workloads.records import make_key, record_field

from tests.workloads.test_tpcc import run_program


@pytest.fixture
def workload():
    return FreeHealthWorkload(FreeHealthConfig(num_users=4, num_patients=20, num_drugs=10,
                                               seed=3))


class TestPopulation:
    def test_schema_tables_present(self, workload):
        data = workload.initial_data()
        assert make_key("user", 0) in data
        assert make_key("patient", 19) in data
        assert make_key("episode", 5, 0) in data
        assert make_key("prescription", 5, 0) in data
        assert make_key("drug", 9) in data
        assert make_key("pmh", 5, 0) in data

    def test_drug_interactions_reference_valid_drugs(self, workload):
        data = workload.initial_data()
        for d in range(10):
            interactions = record_field(data[make_key("drug", d)], "interactions")
            assert all(0 <= other < 10 for other in interactions)

    def test_mix_is_read_mostly(self):
        read_only = {"lookup_patient", "medical_history", "list_prescriptions",
                     "drug_interactions"}
        read_weight = sum(w for name, w in STANDARD_MIX.items() if name in read_only)
        assert read_weight >= 50


class TestTransactions:
    def test_create_patient_assigns_new_id(self, workload):
        state = dict(workload.initial_data())
        result, _ = run_program(workload.create_patient_program(), state)
        assert result["patient"] == 20
        assert make_key("patient", 20) in state
        assert record_field(state[make_key("patient_count", "global")], "count") == 21

    def test_create_episode_bumps_counter(self, workload):
        state = dict(workload.initial_data())
        result, _ = run_program(workload.create_episode_program(patient=3), state)
        assert result["episode"] == 2
        assert record_field(state[make_key("patient_episode_count", 3)], "count") == 3
        assert make_key("episode", 3, 2) in state

    def test_prescribe_adds_prescription_or_flags_interaction(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.prescribe_program(), state)
        if result is not None and "prescription" in result:
            assert make_key("prescription", result["patient"], result["prescription"]) in state
        # Otherwise the transaction aborted because of a drug interaction,
        # which must leave no writes behind.
        else:
            assert writes == {}

    def test_lookup_patient_is_read_only(self, workload):
        state = dict(workload.initial_data())
        before = dict(state)
        result, writes = run_program(workload.lookup_patient_program(), state)
        assert writes == {}
        assert state == before
        assert "latest_episode" in result

    def test_medical_history_returns_entries(self, workload):
        state = dict(workload.initial_data())
        result, _ = run_program(workload.medical_history_program(), state)
        assert len(result["history"]) >= 1

    def test_list_prescriptions(self, workload):
        state = dict(workload.initial_data())
        result, _ = run_program(workload.list_prescriptions_program(), state)
        assert len(result["drugs"]) >= 1

    def test_drug_interactions_check_is_symmetric_enough(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.drug_interactions_program(), state)
        assert writes == {}
        assert isinstance(result["conflict"], bool)

    def test_update_patient_flips_active_flag(self, workload):
        state = dict(workload.initial_data())
        result, _ = run_program(workload.update_patient_program(), state)
        active = record_field(state[make_key("patient", result["patient"])], "active")
        assert active == (1 if result["active"] else 0)

    def test_add_episode_content_targets_latest_episode(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.add_episode_content_program(), state)
        if result and "episode" in result and not result.get("aborted"):
            assert any(key.startswith(f"episode_content:{result['patient']}:") for key in writes)

    def test_factories_generate_programs(self, workload):
        assert len(workload.transaction_factories(15)) == 15
