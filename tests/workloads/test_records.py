"""Tests for record encoding helpers."""

import pytest

from repro.workloads.records import (bump_counter, decode_record, encode_record, make_key,
                                     record_field, split_key, update_record)


class TestEncodeDecode:
    def test_roundtrip(self):
        record = {"id": 3, "name": "alice", "balance": 12.5, "tags": ["a", "b"]}
        assert decode_record(encode_record(record)) == record

    def test_none_and_empty_decode_to_none(self):
        assert decode_record(None) is None
        assert decode_record(b"") is None

    def test_encoding_is_deterministic(self):
        a = encode_record({"b": 1, "a": 2})
        b = encode_record({"a": 2, "b": 1})
        assert a == b

    def test_encoding_is_compact(self):
        assert b" " not in encode_record({"a": 1, "b": [1, 2]})


class TestKeys:
    def test_make_key(self):
        assert make_key("customer", 3, 7, 11) == "customer:3:7:11"

    def test_split_key_roundtrip(self):
        assert split_key(make_key("stock", 2, 99)) == ["stock", "2", "99"]


class TestFieldHelpers:
    def test_update_record_overwrites_fields(self):
        blob = encode_record({"a": 1, "b": 2})
        updated = decode_record(update_record(blob, b=3, c=4))
        assert updated == {"a": 1, "b": 3, "c": 4}

    def test_update_record_from_missing(self):
        assert decode_record(update_record(None, x=1)) == {"x": 1}

    def test_bump_counter(self):
        blob = encode_record({"count": 5})
        assert record_field(bump_counter(blob, "count"), "count") == 6
        assert record_field(bump_counter(None, "count", 3), "count") == 3

    def test_bump_counter_float(self):
        blob = encode_record({"ytd": 1.5})
        assert record_field(bump_counter(blob, "ytd", 2.5), "ytd") == pytest.approx(4.0)

    def test_record_field_default(self):
        assert record_field(None, "x", default=7) == 7
        assert record_field(encode_record({"x": 1}), "y", default="d") == "d"
