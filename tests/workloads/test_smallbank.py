"""Tests for the SmallBank workload."""

import pytest

from repro.workloads.records import record_field
from repro.workloads.smallbank import STANDARD_MIX, SmallBankConfig, SmallBankWorkload

from tests.workloads.test_tpcc import run_program


@pytest.fixture
def workload():
    return SmallBankWorkload(SmallBankConfig(num_accounts=50, seed=2))


class TestPopulation:
    def test_initial_data_has_two_rows_per_account(self, workload):
        data = workload.initial_data()
        assert len(data) == 100
        assert record_field(data[workload.checking_key(0)], "balance") == pytest.approx(100.0)
        assert record_field(data[workload.savings_key(0)], "balance") == pytest.approx(500.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SmallBankConfig(num_accounts=1)
        with pytest.raises(ValueError):
            SmallBankConfig(hotspot_fraction=2.0)


class TestTransactions:
    def test_balance_sums_both_accounts(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(workload.balance_program(account=3), state)
        assert result["balance"] == pytest.approx(600.0)
        assert writes == {}

    def test_deposit_checking_increases_balance(self, workload):
        state = dict(workload.initial_data())
        result, _ = run_program(workload.deposit_checking_program(account=1, amount=25.0), state)
        assert record_field(state[workload.checking_key(1)], "balance") == pytest.approx(125.0)

    def test_transact_savings_aborts_on_overdraft(self, workload):
        state = dict(workload.initial_data())
        result, writes = run_program(
            workload.transact_savings_program(account=1, amount=-10_000.0), state)
        assert result is None          # aborted
        assert record_field(state[workload.savings_key(1)], "balance") == pytest.approx(500.0)

    def test_amalgamate_moves_all_funds(self, workload):
        state = dict(workload.initial_data())
        result, _ = run_program(workload.amalgamate_program(), state)
        src, dst = result["from"], result["to"]
        assert record_field(state[workload.savings_key(src)], "balance") == 0.0
        assert record_field(state[workload.checking_key(src)], "balance") == 0.0
        assert record_field(state[workload.checking_key(dst)], "balance") == pytest.approx(
            100.0 + result["moved"])

    def test_write_check_applies_overdraft_penalty(self, workload):
        state = dict(workload.initial_data())
        result, _ = run_program(workload.write_check_program(account=2, amount=10_000.0), state)
        assert result["penalty"] == 1.0

    def test_send_payment_preserves_total_money(self, workload):
        state = dict(workload.initial_data())
        total_before = sum(record_field(v, "balance", 0.0) for v in state.values())
        result, _ = run_program(workload.send_payment_program(), state)
        total_after = sum(record_field(v, "balance", 0.0) for v in state.values())
        assert total_after == pytest.approx(total_before)

    def test_mix_weights(self, workload):
        assert sum(STANDARD_MIX.values()) == 100
        assert len(workload.transaction_factories(20)) == 20

    def test_hotspot_accounts_receive_more_traffic(self):
        workload = SmallBankWorkload(SmallBankConfig(num_accounts=1000, hotspot_fraction=0.01,
                                                     hotspot_probability=0.5, seed=4))
        picks = [workload._random_account() for _ in range(4000)]
        hot = sum(1 for p in picks if p < 10)
        assert hot > 1200
