"""Tests for metric helpers."""

import pytest

from repro.analysis.metrics import (LatencyStats, geometric_mean, percentile, relative,
                                    slowdown, summarize_latencies, throughput_tps)


class TestPercentiles:
    def test_percentile_of_sorted_sample(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.5) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 1.0) == 100.0

    def test_percentile_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSummaries:
    def test_summarize_latencies(self):
        stats = summarize_latencies([10.0, 20.0, 30.0, 40.0])
        assert stats.count == 4
        assert stats.mean_ms == pytest.approx(25.0)
        assert stats.max_ms == 40.0
        assert stats.p50_ms in (20.0, 30.0)

    def test_summarize_empty(self):
        stats = summarize_latencies([])
        assert stats.count == 0
        assert stats.mean_ms == 0.0

    def test_as_dict(self):
        stats = summarize_latencies([1.0])
        assert set(stats.as_dict()) == {"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                                        "max_ms"}


class TestRates:
    def test_throughput(self):
        assert throughput_tps(100, 2000.0) == pytest.approx(50.0)
        assert throughput_tps(100, 0.0) == 0.0

    def test_relative(self):
        assert relative(10.0, 5.0) == 2.0
        assert relative(10.0, 0.0) == float("inf")
        assert relative(0.0, 0.0) == 1.0

    def test_slowdown(self):
        assert slowdown(100.0, 10.0) == pytest.approx(10.0)
        assert slowdown(100.0, 0.0) == float("inf")

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([-5.0, 10.0]) == pytest.approx(10.0)
