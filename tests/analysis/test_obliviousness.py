"""Tests for the obliviousness analysis helpers."""

import random

import pytest

from repro.analysis.obliviousness import (batch_shapes_equal, bucket_access_counts,
                                          check_bucket_invariant, chi_square_uniformity,
                                          epoch_batch_pattern, leaf_access_counts,
                                          partition_trace_similarity, partition_traces,
                                          slot_read_multiset, split_partition_key,
                                          trace_similarity)
from repro.storage.backend import StorageOp
from repro.storage.trace import AccessTrace


def synthetic_trace(keys, op=StorageOp.READ):
    trace = AccessTrace()
    for i, key in enumerate(keys):
        trace.record(op, key, 64, float(i))
    return trace


class TestKeyParsingAndCounts:
    def test_bucket_access_counts_ignores_non_oram_keys(self):
        trace = synthetic_trace(["oram/3/v0/s/1", "wal/0/0", "ckpt/manifest", "oram/3/v0/s/2"])
        counts = bucket_access_counts(trace)
        assert counts == {3: 2}

    def test_leaf_access_counts_only_counts_leaf_level(self):
        # depth 2: leaves are buckets 3..6.
        trace = synthetic_trace(["oram/0/v0/s/0", "oram/3/v0/s/0", "oram/6/v1/s/2"])
        counts = leaf_access_counts(trace, depth=2)
        assert counts == {0: 1, 3: 1}

    def test_write_ops_filtered(self):
        trace = AccessTrace()
        trace.record(StorageOp.WRITE, "oram/1/v1/s/0", 64, 0.0)
        assert bucket_access_counts(trace, StorageOp.READ) == {}
        assert bucket_access_counts(trace, StorageOp.WRITE) == {1: 1}

    def test_slot_read_multiset(self):
        trace = synthetic_trace(["oram/1/v0/s/0", "oram/1/v0/s/0", "oram/1/v1/s/0"])
        counts = slot_read_multiset(trace)
        assert counts[(1, 0, 0)] == 2
        assert counts[(1, 1, 0)] == 1

    def test_bucket_invariant_violation_detected(self):
        trace = synthetic_trace(["oram/1/v0/s/0", "oram/1/v0/s/0"])
        assert check_bucket_invariant(trace) == [(1, 0, 0)]

    def test_bucket_invariant_clean_trace(self):
        trace = synthetic_trace([f"oram/1/v0/s/{i}" for i in range(5)])
        assert check_bucket_invariant(trace) == []


class TestPartitionSplitting:
    def test_split_partition_key(self):
        assert split_partition_key("p2/oram/3/v0/s/1") == (2, "oram/3/v0/s/1")
        assert split_partition_key("oram/3/v0/s/1") == (0, "oram/3/v0/s/1")
        assert split_partition_key("wal/0/0") == (0, "wal/0/0")
        assert split_partition_key("p11/ckpt/manifest") == (11, "ckpt/manifest")

    def test_prefixed_oram_keys_are_counted(self):
        trace = synthetic_trace(["p0/oram/3/v0/s/1", "p1/oram/3/v0/s/1", "oram/3/v0/s/2"])
        assert bucket_access_counts(trace) == {3: 3}

    def test_partition_traces_split_and_strip(self):
        trace = synthetic_trace(["p0/oram/1/v0/s/0", "p1/oram/2/v0/s/0",
                                 "p0/oram/1/v0/s/1", "wal/0/0"])
        split = partition_traces(trace)
        assert set(split) == {0, 1}
        assert split[0].keys_accessed() == ["oram/1/v0/s/0", "oram/1/v0/s/1", "wal/0/0"]
        assert split[1].keys_accessed() == ["oram/2/v0/s/0"]

    def test_bucket_invariant_is_per_partition(self):
        # The same (bucket, version, slot) in two partitions is NOT a
        # violation; a repeat within one partition is.
        clean = synthetic_trace(["p0/oram/1/v0/s/0", "p1/oram/1/v0/s/0"])
        assert check_bucket_invariant(clean) == []
        dirty = synthetic_trace(["p1/oram/1/v0/s/0", "p1/oram/1/v0/s/0"])
        assert check_bucket_invariant(dirty) == [(1, 0, 0)]

    def test_partition_trace_similarity_flags_missing_partition(self):
        a = synthetic_trace(["p0/oram/15/v0/s/0", "p1/oram/15/v0/s/0"])
        b = synthetic_trace(["p0/oram/15/v0/s/0"])
        distances = partition_trace_similarity(a, b, depth=4)
        assert distances[0] == 0.0
        assert distances[1] == 1.0


class TestStatistics:
    def test_chi_square_accepts_uniform_sample(self):
        rng = random.Random(1)
        counts = {}
        for _ in range(8000):
            leaf = rng.randrange(16)
            counts[leaf] = counts.get(leaf, 0) + 1
        _stat, p_value = chi_square_uniformity(counts, 16)
        assert p_value > 0.01

    def test_chi_square_rejects_skewed_sample(self):
        counts = {0: 5000}
        _stat, p_value = chi_square_uniformity(counts, 16)
        assert p_value < 1e-6

    def test_chi_square_empty_sample(self):
        assert chi_square_uniformity({}, 8) == (0.0, 1.0)

    def test_trace_similarity_of_identical_distributions_is_small(self):
        rng = random.Random(2)
        keys_a = [f"oram/{15 + rng.randrange(16)}/v0/s/0" for _ in range(4000)]
        keys_b = [f"oram/{15 + rng.randrange(16)}/v0/s/0" for _ in range(4000)]
        distance = trace_similarity(synthetic_trace(keys_a), synthetic_trace(keys_b), depth=4)
        assert distance < 0.1

    def test_trace_similarity_detects_skew(self):
        uniform = [f"oram/{15 + i % 16}/v0/s/0" for i in range(1600)]
        skewed = ["oram/15/v0/s/0"] * 1600
        distance = trace_similarity(synthetic_trace(uniform), synthetic_trace(skewed), depth=4)
        assert distance > 0.8


class TestBatchShape:
    def test_epoch_batch_pattern(self):
        trace = AccessTrace()
        trace.begin_batch("read", 0.0, 8)
        trace.begin_batch("read", 1.0, 8)
        trace.begin_batch("write", 2.0, 4)
        assert epoch_batch_pattern(trace) == ["read", "read", "write"]

    def test_batch_shapes_equal(self):
        a, b, c = AccessTrace(), AccessTrace(), AccessTrace()
        for trace in (a, b):
            trace.begin_batch("read", 0.0, 8)
            trace.begin_batch("write", 1.0, 2)
        c.begin_batch("read", 0.0, 4)
        assert batch_shapes_equal(a, b)
        assert not batch_shapes_equal(a, c)
