"""Tests for crash injection."""

import pytest

from repro.core.errors import ProxyCrashedError
from repro.recovery.crash import CrashInjector, CrashPoint

from tests.conftest import read_program


class TestCrashInjector:
    def test_crash_before_first_batch(self, durable_proxy):
        injector = CrashInjector(durable_proxy, crash_after_batches=0,
                                 point=CrashPoint.BEFORE_READ_BATCH)
        injector.arm()
        durable_proxy.submit(read_program("k1"))
        with pytest.raises(ProxyCrashedError):
            durable_proxy.run_epoch()
        assert durable_proxy.crashed
        assert injector.fired

    def test_crash_after_n_batches(self, durable_proxy):
        injector = CrashInjector(durable_proxy, crash_after_batches=2,
                                 point=CrashPoint.BEFORE_READ_BATCH)
        injector.arm()
        durable_proxy.submit(read_program("k1"))
        # First epoch dispatches 3 batches; the crash fires before the third.
        with pytest.raises(ProxyCrashedError):
            durable_proxy.run_epoch()
        assert injector.fired

    def test_crash_before_checkpoint(self, durable_proxy):
        injector = CrashInjector(durable_proxy, crash_after_batches=0,
                                 point=CrashPoint.BEFORE_CHECKPOINT)
        injector.arm()
        durable_proxy.submit(read_program("k1"))
        with pytest.raises(ProxyCrashedError):
            durable_proxy.run_epoch()
        assert durable_proxy.crashed

    def test_disarm_restores_normal_operation(self, durable_proxy):
        injector = CrashInjector(durable_proxy, crash_after_batches=99,
                                 point=CrashPoint.BEFORE_READ_BATCH)
        injector.arm()
        injector.disarm()
        durable_proxy.submit(read_program("k1"))
        summary = durable_proxy.run_epoch()
        assert summary.committed == 1

    def test_no_crash_when_threshold_not_reached(self, durable_proxy):
        injector = CrashInjector(durable_proxy, crash_after_batches=100,
                                 point=CrashPoint.BEFORE_READ_BATCH)
        injector.arm()
        durable_proxy.submit(read_program("k1"))
        summary = durable_proxy.run_epoch()
        assert summary.committed == 1
        assert not injector.fired
