"""Tests for the checkpoint store."""

import pytest

from repro.recovery.checkpoint import MANIFEST_KEY, CheckpointManifest, CheckpointStore
from repro.sim.clock import SimClock
from repro.storage.memory import InMemoryStorageServer


@pytest.fixture
def storage():
    return InMemoryStorageServer(latency="dummy", clock=SimClock())


@pytest.fixture
def store(storage):
    return CheckpointStore(storage)


class TestManifest:
    def test_fresh_manifest_is_empty(self, store):
        assert store.manifest.last_epoch == -1
        assert store.chain() == []

    def test_manifest_roundtrip(self):
        manifest = CheckpointManifest(last_epoch=4, last_full_epoch=2, delta_epochs=[3, 4],
                                      access_count=100, eviction_count=12)
        restored = CheckpointManifest.deserialize(manifest.serialize())
        assert restored == manifest

    def test_manifest_persisted_on_storage(self, store, storage):
        store.write_checkpoint(0, {"position": b"{}"}, {}, full=True,
                               access_count=1, eviction_count=0)
        assert storage.contains(MANIFEST_KEY)
        reloaded = CheckpointStore(storage, cipher=store.cipher)
        assert reloaded.manifest.last_epoch == 0


class TestWriteAndRead:
    def test_component_roundtrip_encrypted(self, store):
        store.write_checkpoint(1, {"position": b"position-data"}, {"valid_map": b"[]"},
                               full=True, access_count=5, eviction_count=1)
        assert store.read_component(1, "position", full=True) == b"position-data"
        assert store.read_component(1, "valid_map", full=True, encrypted=False) == b"[]"

    def test_encrypted_components_unreadable_raw(self, store, storage):
        store.write_checkpoint(1, {"position": b"plaintext-position"}, {}, full=True,
                               access_count=0, eviction_count=0)
        raw = storage.read("ckpt/1/full/position")
        assert raw != b"plaintext-position"

    def test_missing_component_is_none(self, store):
        assert store.read_component(9, "position", full=True) is None

    def test_sizes_reported(self, store):
        sizes = store.write_checkpoint(0, {"position": b"x" * 100, "metadata": b"y" * 50,
                                           "stash": b"z" * 25},
                                       {"valid_map": b"v" * 10}, full=True,
                                       access_count=0, eviction_count=0)
        assert sizes.position_bytes >= 100
        assert sizes.metadata_bytes >= 50
        assert sizes.stash_bytes >= 25
        assert sizes.valid_map_bytes == 10
        assert sizes.total_bytes >= 185


class TestChain:
    def test_chain_full_then_deltas(self, store):
        store.write_checkpoint(0, {"position": b"full"}, {}, full=True,
                               access_count=0, eviction_count=0)
        store.write_checkpoint(1, {"position": b"d1"}, {}, full=False,
                               access_count=0, eviction_count=0)
        store.write_checkpoint(2, {"position": b"d2"}, {}, full=False,
                               access_count=0, eviction_count=0)
        chain = store.chain()
        assert [(entry["epoch"], entry["full"]) for entry in chain] == [
            (0, True), (1, False), (2, False)]

    def test_new_full_checkpoint_resets_deltas(self, store):
        store.write_checkpoint(0, {"position": b"f0"}, {}, full=True,
                               access_count=0, eviction_count=0)
        store.write_checkpoint(1, {"position": b"d1"}, {}, full=False,
                               access_count=0, eviction_count=0)
        store.write_checkpoint(2, {"position": b"f2"}, {}, full=True,
                               access_count=0, eviction_count=0)
        chain = store.chain()
        assert [(entry["epoch"], entry["full"]) for entry in chain] == [(2, True)]

    def test_counters_stored(self, store):
        store.write_checkpoint(0, {"position": b"x"}, {}, full=True,
                               access_count=42, eviction_count=7)
        assert store.manifest.access_count == 42
        assert store.manifest.eviction_count == 7

    def test_garbage_collect_removes_old_epochs(self, store, storage):
        store.write_checkpoint(0, {"position": b"old"}, {}, full=True,
                               access_count=0, eviction_count=0)
        store.write_checkpoint(5, {"position": b"new"}, {}, full=True,
                               access_count=0, eviction_count=0)
        removed = store.garbage_collect(keep_after_epoch=5)
        assert removed >= 1
        assert store.read_component(0, "position", full=True) is None
        assert store.read_component(5, "position", full=True) == b"new"
