"""Tests for shadow-paging helpers (deterministic versions, garbage collection)."""

import pytest

from repro.oram import path_math
from repro.recovery.snapshots import (collect_garbage, expected_versions_from_evictions,
                                      old_version_keys, orphaned_slot_keys)
from repro.oram.crypto import CipherSuite
from repro.oram.parameters import RingOramParameters
from repro.oram.ring_oram import RingOram
from repro.sim.clock import SimClock
from repro.storage.memory import InMemoryStorageServer


def make_oram():
    clock = SimClock()
    storage = InMemoryStorageServer(latency="dummy", clock=clock)
    params = RingOramParameters(num_blocks=64, z_real=4, s_dummies=6, evict_rate=3,
                                depth=3, block_size=64)
    oram = RingOram(params, storage, cipher=CipherSuite(block_size=72), clock=clock, seed=1)
    return oram, storage


class TestDeterministicVersions:
    def test_matches_closed_form(self):
        for g in (0, 3, 8, 17):
            versions = expected_versions_from_evictions(g, depth=3)
            for bucket, version in versions.items():
                assert version == path_math.eviction_count_for_bucket(bucket, g, 3)

    def test_root_version_equals_eviction_count(self):
        versions = expected_versions_from_evictions(9, depth=4)
        assert versions[0] == 9

    def test_matches_live_oram_without_reshuffles(self):
        oram, _ = make_oram()
        for block in range(12):
            oram.write(block, bytes([block]))
        if oram.stats_early_reshuffles == 0:
            expected = expected_versions_from_evictions(oram.eviction_count, oram.params.depth)
            for bucket in oram.metadata.buckets_present():
                assert oram.metadata.bucket(bucket).version == expected[bucket]


class TestGarbageCollection:
    def test_no_orphans_in_consistent_state(self):
        oram, storage = make_oram()
        for block in range(10):
            oram.write(block, b"v")
        assert orphaned_slot_keys(storage, oram.metadata, oram.params.slots_per_bucket) == []

    def test_orphans_detected_and_collected(self):
        oram, storage = make_oram()
        for block in range(10):
            oram.write(block, b"v")
        # Simulate an aborted epoch that wrote a newer version of the root.
        future_version = oram.metadata.bucket(0).version + 3
        storage.write(f"oram/0/v{future_version}/s/0", b"orphan")
        orphans = orphaned_slot_keys(storage, oram.metadata, oram.params.slots_per_bucket)
        assert f"oram/0/v{future_version}/s/0" in orphans
        removed = collect_garbage(storage, oram.metadata, oram.params.slots_per_bucket)
        assert removed == len(orphans)
        assert not storage.contains(f"oram/0/v{future_version}/s/0")

    def test_old_versions_listed_for_reclamation(self):
        oram, storage = make_oram()
        for block in range(30):
            oram.write(block, b"v")
        stale = old_version_keys(storage, oram.metadata, keep_versions=1)
        current_root_version = oram.metadata.bucket(0).version
        for key in stale:
            parts = key.split("/")
            if parts[1] == "0":
                assert int(parts[2][1:]) < current_root_version - 1

    def test_non_oram_keys_ignored(self):
        oram, storage = make_oram()
        storage.write("wal/1/0", b"log")
        storage.write("ckpt/manifest", b"{}")
        assert orphaned_slot_keys(storage, oram.metadata, 10) == []
