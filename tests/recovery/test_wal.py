"""Tests for the write-ahead log of read-batch locations."""

import pytest

from repro.recovery.wal import WalRecord, WriteAheadLog, wal_storage_key
from repro.sim.clock import SimClock
from repro.storage.memory import InMemoryStorageServer


@pytest.fixture
def storage():
    return InMemoryStorageServer(latency="dummy", clock=SimClock())


@pytest.fixture
def wal(storage):
    return WriteAheadLog(storage, entry_capacity=4096)


class TestAppendAndRead:
    def test_append_then_read_roundtrip(self, wal):
        record = WalRecord(epoch_id=2, batch_index=1, keys=["a", "b"], padded_size=8)
        wal.append(record)
        read_back = wal.read_epoch(2, max_batches=4)
        assert len(read_back) == 1
        assert read_back[0].keys == ["a", "b"]
        assert read_back[0].batch_index == 1

    def test_multiple_batches_in_order(self, wal):
        for index in range(3):
            wal.append(WalRecord(epoch_id=5, batch_index=index, keys=[f"k{index}"],
                                 padded_size=4))
        records = wal.read_epoch(5, max_batches=8)
        assert [r.batch_index for r in records] == [0, 1, 2]

    def test_missing_epoch_reads_empty(self, wal):
        assert wal.read_epoch(99, max_batches=4) == []

    def test_entries_are_encrypted_on_storage(self, wal, storage):
        wal.append(WalRecord(epoch_id=0, batch_index=0, keys=["secret-key-name"],
                             padded_size=4))
        blob = storage.read(wal_storage_key(0, 0))
        assert b"secret-key-name" not in blob

    def test_entry_size_independent_of_key_count(self, wal):
        size_one = wal.append(WalRecord(epoch_id=0, batch_index=0, keys=["a"], padded_size=16))
        size_many = wal.append(WalRecord(epoch_id=0, batch_index=1,
                                         keys=[f"key{i}" for i in range(16)], padded_size=16))
        assert size_one == size_many

    def test_records_written_counter(self, wal):
        wal.append(WalRecord(epoch_id=0, batch_index=0, keys=[], padded_size=2))
        assert wal.records_written == 1

    def test_unencrypted_mode(self, storage):
        wal = WriteAheadLog(storage, entry_capacity=1024, encrypt=False)
        wal.append(WalRecord(epoch_id=1, batch_index=0, keys=["x"], padded_size=2))
        assert wal.read_epoch(1, max_batches=2)[0].keys == ["x"]


class TestTruncation:
    def test_truncate_removes_old_epochs(self, wal, storage):
        for epoch in range(3):
            wal.append(WalRecord(epoch_id=epoch, batch_index=0, keys=["k"], padded_size=2))
        deleted = wal.truncate_before(2, max_batches=2)
        assert deleted == 2
        assert not storage.contains(wal_storage_key(0, 0))
        assert storage.contains(wal_storage_key(2, 0))

    def test_truncate_nothing_to_delete(self, wal):
        assert wal.truncate_before(0, max_batches=2) == 0
