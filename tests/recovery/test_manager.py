"""Tests for the recovery manager: checkpoints, crash recovery, WAL replay."""

import pytest

from repro.core.client import Read, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.errors import ProxyCrashedError
from repro.core.proxy import ObladiProxy
from repro.recovery.crash import CrashInjector, CrashPoint
from repro.recovery.manager import RecoveryManager, derive_key, recover_proxy

from tests.conftest import read_program, write_program


@pytest.fixture
def durable_proxy_with_history(durable_config):
    """A durable proxy that has committed three epochs of writes."""
    proxy = ObladiProxy(durable_config)
    proxy.load_initial_data({f"k{i}": f"value-{i}".encode() for i in range(30)})
    for epoch in range(3):
        for i in range(4):
            proxy.submit(write_program(f"k{i}", f"epoch{epoch}-{i}".encode()))
        proxy.run_epoch()
    return proxy


class TestKeyDerivation:
    def test_derive_key_is_deterministic(self):
        assert derive_key(b"m" * 32, "oram") == derive_key(b"m" * 32, "oram")

    def test_derive_key_differs_by_purpose(self):
        assert derive_key(b"m" * 32, "oram") != derive_key(b"m" * 32, "wal")


class TestNormalOperationHooks:
    def test_checkpoints_written_each_epoch(self, durable_proxy_with_history):
        manager = durable_proxy_with_history.recovery
        assert manager.stats_checkpoints >= 3

    def test_wal_logged_per_read_batch(self, durable_proxy):
        durable_proxy.submit(read_program("k1"))
        durable_proxy.run_epoch()
        assert durable_proxy.recovery.wal.records_written >= 1

    def test_durability_traffic_charged_to_clock(self, durable_config, small_config):
        durable = ObladiProxy(durable_config)
        plain = ObladiProxy(small_config)
        data = {f"k{i}": b"v" for i in range(10)}
        durable.load_initial_data(data)
        plain.load_initial_data(data)
        for proxy in (durable, plain):
            proxy.submit(write_program("k1", b"x"))
            proxy.run_epoch()
        assert durable.clock.now_ms > plain.clock.now_ms


class TestRecovery:
    def test_recovery_restores_committed_state(self, durable_proxy_with_history):
        proxy = durable_proxy_with_history
        config = proxy.config
        proxy.crash()
        recovered, result = recover_proxy(proxy.storage, config, master_key=proxy.master_key)
        assert result.recovered_epoch >= 2
        for i in range(4):
            value = recovered.execute_transaction(read_program(f"k{i}")).return_value
            assert value == f"epoch2-{i}".encode()
        # Untouched keys still hold their initial values.
        assert recovered.execute_transaction(read_program("k20")).return_value == b"value-20"

    def test_aborted_epoch_writes_do_not_survive(self, durable_proxy_with_history):
        proxy = durable_proxy_with_history
        injector = CrashInjector(proxy, crash_after_batches=0,
                                 point=CrashPoint.BEFORE_READ_BATCH)
        injector.arm()

        def doomed():
            yield Read("k0")
            yield Write("k0", b"MUST-NOT-SURVIVE")
            return True

        proxy.submit(doomed)
        with pytest.raises(ProxyCrashedError):
            proxy.run_epoch()
        recovered, _ = recover_proxy(proxy.storage, proxy.config, master_key=proxy.master_key)
        value = recovered.execute_transaction(read_program("k0")).return_value
        assert value == b"epoch2-0"

    def test_recovered_proxy_continues_serving(self, durable_proxy_with_history):
        proxy = durable_proxy_with_history
        proxy.crash()
        recovered, _ = recover_proxy(proxy.storage, proxy.config, master_key=proxy.master_key)
        result = recovered.execute_transaction(write_program("k9", b"after-recovery"))
        assert result.committed
        assert recovered.execute_transaction(read_program("k9")).return_value == b"after-recovery"

    def test_recovery_reports_component_times(self, durable_proxy_with_history):
        proxy = durable_proxy_with_history
        proxy.crash()
        _, result = recover_proxy(proxy.storage, proxy.config, master_key=proxy.master_key)
        assert result.total_ms > 0
        assert result.position_ms >= 0
        assert result.permutation_ms >= 0
        assert result.bytes_read > 0

    def test_recovery_replays_aborted_epoch_paths(self, durable_proxy_with_history):
        proxy = durable_proxy_with_history
        injector = CrashInjector(proxy, crash_after_batches=1,
                                 point=CrashPoint.AFTER_READ_BATCH)
        injector.arm()
        proxy.submit(read_program("k3"))
        with pytest.raises(ProxyCrashedError):
            proxy.run_epoch()
        _, result = recover_proxy(proxy.storage, proxy.config, master_key=proxy.master_key)
        assert result.paths_replayed >= 1
        assert result.paths_ms > 0

    def test_wrong_master_key_cannot_recover(self, durable_proxy_with_history):
        proxy = durable_proxy_with_history
        proxy.crash()
        from repro.oram.crypto import IntegrityError
        with pytest.raises(IntegrityError):
            recover_proxy(proxy.storage, proxy.config, master_key=b"wrong" * 8)

    def test_recovery_requires_durability(self, small_config, proxy):
        proxy.crash()
        with pytest.raises((ValueError, Exception)):
            recover_proxy(proxy.storage, small_config, master_key=proxy.master_key)

    def test_epoch_counter_continues_after_recovery(self, durable_proxy_with_history):
        proxy = durable_proxy_with_history
        epochs_before = proxy._epoch_counter
        proxy.crash()
        recovered, _ = recover_proxy(proxy.storage, proxy.config, master_key=proxy.master_key)
        recovered.submit(read_program("k1"))
        summary = recovered.run_epoch()
        assert summary.epoch_id >= epochs_before - 1
