"""Tests for the multi-server storage cluster (server topology seam)."""

import pytest

from repro.core.config import ObladiConfig, RingOramConfig
from repro.sim.clock import SimClock
from repro.storage.cluster import StorageCluster, build_storage, link_latency_models
from repro.storage.memory import InMemoryStorageServer
from repro.storage.namespace import NamespacedStorage, partition_prefix


def _cluster(num_servers=3, **kwargs):
    kwargs.setdefault("latency", "dummy")
    return StorageCluster(num_servers=num_servers, **kwargs)


class TestTopology:
    def test_needs_at_least_two_servers(self):
        with pytest.raises(ValueError):
            StorageCluster(num_servers=1)

    def test_round_robin_partition_hosting(self):
        cluster = _cluster(3)
        assert [cluster.server_index_for_partition(i) for i in range(7)] == \
            [0, 1, 2, 0, 1, 2, 0]
        assert cluster.server_for_partition(4) is cluster.servers[1]

    def test_negative_partition_rejected(self):
        with pytest.raises(ValueError):
            _cluster().server_index_for_partition(-1)

    def test_servers_are_distinct_stores(self):
        cluster = _cluster(2)
        cluster.servers[0].write("x", b"zero")
        cluster.servers[1].write("x", b"one")
        assert cluster.servers[0].read("x") == b"zero"
        assert cluster.servers[1].read("x") == b"one"


class TestLinkModels:
    def test_homogeneous_links_share_the_base_model(self):
        models = link_latency_models("server", 3)
        assert len(models) == 3
        assert all(model.name == "server" for model in models)

    def test_extra_rtt_applies_per_link(self):
        models = link_latency_models("server", 3, link_extra_rtt_ms=(0.0, 9.7))
        assert models[0].read_rtt_ms == pytest.approx(0.3)
        assert models[1].read_rtt_ms == pytest.approx(10.0)
        assert models[2].read_rtt_ms == pytest.approx(0.3)   # beyond the sequence
        assert models[1].name == "server_s1"

    def test_cluster_exposes_partition_link_model(self):
        cluster = _cluster(2, latency="server", link_extra_rtt_ms=(0.0, 5.0))
        assert cluster.link_model_for_partition(3).read_rtt_ms == pytest.approx(5.3)
        assert cluster.link_model_for_partition(2).read_rtt_ms == pytest.approx(0.3)


class TestMetadataRouting:
    def test_storage_server_interface_hits_the_metadata_server(self):
        cluster = _cluster(3)
        cluster.write("checkpoint/manifest", b"m")
        assert cluster.metadata_server.read("checkpoint/manifest") == b"m"
        assert cluster.contains("checkpoint/manifest")
        assert not cluster.servers[1].contains("checkpoint/manifest")
        assert cluster.keys() == ["checkpoint/manifest"]

    def test_all_keys_aggregates_every_server(self):
        cluster = _cluster(2)
        cluster.servers[0].write("a", b"1")
        cluster.servers[1].write("b", b"22")
        assert sorted(cluster.all_keys()) == ["a", "b"]
        assert cluster.size_bytes() == 3
        assert [sorted(s) for s in cluster.snapshot()] == [["a"], ["b"]]


class TestSharedSimulationPlumbing:
    def test_clock_and_charge_latency_forward_to_every_server(self):
        cluster = _cluster(2, latency="server")
        clock = SimClock()
        cluster.clock = clock
        cluster.charge_latency = False
        for server in cluster.servers:
            assert server.clock is clock
            assert server.charge_latency is False
        assert cluster.clock is clock
        cluster.read_batch(["k"])
        assert clock.now_ms == 0.0   # latency charging disabled

    def test_fail_recover_covers_the_whole_tier(self):
        cluster = _cluster(2)
        cluster.fail()
        with pytest.raises(ConnectionError):
            cluster.servers[1].read("x")
        cluster.recover()
        assert cluster.servers[1].read("x") is None


class TestObservability:
    def test_each_server_records_its_own_trace(self):
        cluster = _cluster(2)
        NamespacedStorage(cluster.server_for_partition(0), partition_prefix(0)).write("x", b"a")
        NamespacedStorage(cluster.server_for_partition(1), partition_prefix(1)).write("x", b"b")
        assert cluster.servers[0].trace.keys_accessed() == ["p0/x"]
        assert cluster.servers[1].trace.keys_accessed() == ["p1/x"]

    def test_merged_trace_is_time_ordered_and_clear_propagates(self):
        cluster = _cluster(2)
        cluster.servers[0].write("a", b"1")
        cluster.servers[1].write("b", b"2")
        merged = cluster.trace
        assert merged.keys_accessed() == ["a", "b"]
        # The single-server idiom `storage.trace.clear()` between experiment
        # phases must keep working: clearing the merged view clears every
        # server's underlying trace.
        merged.clear()
        assert len(merged) == 0
        for server in cluster.servers:
            assert len(server.trace) == 0

    def test_merged_trace_carries_batch_boundaries(self):
        cluster = _cluster(2)
        cluster.servers[0].trace.begin_batch("read", 1.0, 8)
        cluster.servers[1].trace.begin_batch("write", 0.5, 4)
        assert cluster.trace.batch_shape() == [("write", 4), ("read", 8)]

    def test_recording_into_the_merged_view_reaches_no_server(self):
        from repro.storage.backend import StorageOp
        cluster = _cluster(2)
        cluster.servers[0].write("a", b"1")
        merged = cluster.trace
        merged.record(StorageOp.READ, "ghost", 0, 0.0)
        assert all("ghost" not in server.trace.keys_accessed()
                   for server in cluster.servers)

    def test_aggregate_and_per_server_stats(self):
        cluster = _cluster(2)
        cluster.servers[0].write("a", b"1")
        cluster.servers[1].read("a")
        cluster.servers[1].read("b")
        assert cluster.stats_writes == 1
        assert cluster.stats_reads == 2
        per = cluster.per_server_stats()
        assert per[0]["writes"] == 1 and per[1]["reads"] == 2


class TestBuildStorage:
    def _config(self, **overrides):
        base = dict(oram=RingOramConfig(num_blocks=64, z_real=4, block_size=64),
                    backend="dummy", durability=False, encrypt=False)
        base.update(overrides)
        return ObladiConfig(**base)

    def test_single_server_for_default_topology(self):
        storage = build_storage(self._config())
        assert isinstance(storage, InMemoryStorageServer)

    def test_cluster_for_multi_server_topology(self):
        storage = build_storage(self._config(shards=4, storage_servers=4,
                                             link_extra_rtt_ms=(1.0,)))
        assert isinstance(storage, StorageCluster)
        assert storage.num_servers == 4
        assert storage.link_models[0].read_rtt_ms == pytest.approx(1.0)

    def test_config_rejects_more_servers_than_shards(self):
        with pytest.raises(ValueError, match="storage_servers"):
            self._config(shards=2, storage_servers=4)

    def test_config_topology_names(self):
        assert self._config().topology == "colocated"
        assert self._config(shards=4, storage_servers=4).topology == "per-partition"
        assert self._config(shards=4, storage_servers=2).topology == "grouped"
