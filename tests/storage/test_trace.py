"""Tests for the adversary-visible access trace."""

import pytest

from repro.storage.backend import StorageOp
from repro.storage.trace import AccessTrace, merge_traces


@pytest.fixture
def trace():
    return AccessTrace()


class TestRecording:
    def test_events_are_sequenced(self, trace):
        trace.record(StorageOp.READ, "a", 10, 0.0)
        trace.record(StorageOp.WRITE, "b", 20, 1.0)
        assert [e.seq for e in trace.events] == [0, 1]

    def test_len_counts_events(self, trace):
        for i in range(5):
            trace.record(StorageOp.READ, f"k{i}", 1, float(i))
        assert len(trace) == 5

    def test_begin_batch_assigns_increasing_ids(self, trace):
        first = trace.begin_batch("read", 0.0, 4)
        second = trace.begin_batch("write", 1.0, 2)
        assert second == first + 1

    def test_clear_resets_everything(self, trace):
        trace.begin_batch("read", 0.0, 1)
        trace.record(StorageOp.READ, "a", 1, 0.0)
        trace.clear()
        assert len(trace) == 0
        assert trace.batches == []
        assert trace.begin_batch("read", 0.0, 1) == 0


class TestQueries:
    def test_keys_accessed_in_order(self, trace):
        trace.record(StorageOp.READ, "a", 1, 0.0)
        trace.record(StorageOp.WRITE, "b", 1, 1.0)
        trace.record(StorageOp.READ, "a", 1, 2.0)
        assert trace.keys_accessed() == ["a", "b", "a"]
        assert trace.keys_accessed(StorageOp.READ) == ["a", "a"]

    def test_key_frequencies(self, trace):
        for _ in range(3):
            trace.record(StorageOp.READ, "hot", 1, 0.0)
        trace.record(StorageOp.READ, "cold", 1, 0.0)
        freqs = trace.key_frequencies()
        assert freqs["hot"] == 3
        assert freqs["cold"] == 1

    def test_ops_by_kind(self, trace):
        trace.record(StorageOp.READ, "a", 1, 0.0)
        trace.record(StorageOp.DELETE, "a", 0, 1.0)
        counts = trace.ops_by_kind()
        assert counts[StorageOp.READ] == 1
        assert counts[StorageOp.DELETE] == 1

    def test_batch_shape(self, trace):
        trace.begin_batch("read", 0.0, 8)
        trace.begin_batch("write", 5.0, 4)
        assert trace.batch_shape() == [("read", 8), ("write", 4)]

    def test_events_in_window(self, trace):
        trace.record(StorageOp.READ, "a", 1, 1.0)
        trace.record(StorageOp.READ, "b", 1, 5.0)
        trace.record(StorageOp.READ, "c", 1, 9.0)
        window = trace.events_in_window(2.0, 8.0)
        assert [e.key for e in window] == ["b"]

    def test_keys_matching_prefix(self, trace):
        trace.record(StorageOp.READ, "oram/1/v0/s/0", 1, 0.0)
        trace.record(StorageOp.READ, "wal/0/1", 1, 0.0)
        assert trace.keys_matching("oram/") == ["oram/1/v0/s/0"]

    def test_total_bytes(self, trace):
        trace.record(StorageOp.READ, "a", 10, 0.0)
        trace.record(StorageOp.WRITE, "b", 32, 0.0)
        assert trace.total_bytes() == 42
        assert trace.total_bytes(StorageOp.WRITE) == 32


class TestMergeTraces:
    def test_merge_orders_by_time(self):
        a, b = AccessTrace(), AccessTrace()
        a.record(StorageOp.READ, "a1", 1, 2.0)
        b.record(StorageOp.READ, "b1", 1, 1.0)
        merged = merge_traces([a, b])
        assert merged.keys_accessed() == ["b1", "a1"]

    def test_merge_preserves_event_count(self):
        a, b = AccessTrace(), AccessTrace()
        for i in range(4):
            a.record(StorageOp.READ, f"a{i}", 1, float(i))
            b.record(StorageOp.WRITE, f"b{i}", 1, float(i))
        merged = merge_traces([a, b])
        assert len(merged) == 8
