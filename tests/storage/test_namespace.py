"""Tests for NamespacedStorage key iteration under mixed prefixes."""

import pytest

from repro.storage.memory import InMemoryStorageServer
from repro.storage.namespace import NamespacedStorage, partition_prefix


@pytest.fixture
def base():
    server = InMemoryStorageServer(latency="dummy")
    server.write("wal/0", b"wal")                     # unprefixed durability key
    NamespacedStorage(server, "p0/").write("oram/1", b"a")
    NamespacedStorage(server, "p1/").write("oram/1", b"b")
    NamespacedStorage(server, "p1/").write("oram/2", b"c")
    NamespacedStorage(server, "p10/").write("oram/1", b"d")
    return server


class TestPartitionPrefix:
    def test_prefix_format(self):
        assert partition_prefix(0) == "p0/"
        assert partition_prefix(12) == "p12/"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            partition_prefix(-1)


class TestMixedPrefixIteration:
    def test_keys_are_stripped_and_scoped_to_the_namespace(self, base):
        assert sorted(NamespacedStorage(base, "p1/").keys()) == ["oram/1", "oram/2"]
        assert NamespacedStorage(base, "p0/").keys() == ["oram/1"]

    def test_p1_does_not_swallow_p10(self, base):
        """'p1/' must not match 'p10/...' — the slash is part of the prefix."""
        assert "0/oram/1" not in NamespacedStorage(base, "p1/").keys()
        assert NamespacedStorage(base, "p10/").keys() == ["oram/1"]

    def test_unprefixed_keys_belong_to_no_namespace(self, base):
        for prefix in ("p0/", "p1/", "p10/"):
            assert "wal/0" not in NamespacedStorage(base, prefix).keys()
        assert "wal/0" in base.keys()

    def test_contains_respects_the_namespace(self, base):
        view = NamespacedStorage(base, "p1/")
        assert view.contains("oram/2")
        assert not view.contains("wal/0")
        assert not NamespacedStorage(base, "p0/").contains("oram/2")

    def test_read_batch_round_trips_under_mixed_prefixes(self, base):
        view = NamespacedStorage(base, "p1/")
        result = view.read_batch(["oram/1", "oram/2", "missing"])
        assert result.values == {"oram/1": b"b", "oram/2": b"c", "missing": None}

    def test_delete_batch_only_touches_the_namespace(self, base):
        NamespacedStorage(base, "p1/").delete_batch(["oram/1"])
        assert not NamespacedStorage(base, "p1/").contains("oram/1")
        assert NamespacedStorage(base, "p0/").contains("oram/1")
        assert NamespacedStorage(base, "p10/").contains("oram/1")
