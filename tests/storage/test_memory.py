"""Tests for the in-memory storage server."""

import pytest

from repro.sim.clock import SimClock
from repro.storage.backend import StorageOp
from repro.storage.memory import InMemoryStorageServer


@pytest.fixture
def server():
    return InMemoryStorageServer(latency="server", clock=SimClock())


class TestReadWrite:
    def test_read_missing_key_returns_none(self, server):
        assert server.read("absent") is None

    def test_write_then_read_roundtrip(self, server):
        server.write("a", b"payload")
        assert server.read("a") == b"payload"

    def test_write_batch_stores_all_items(self, server):
        server.write_batch({f"k{i}": bytes([i]) for i in range(10)})
        assert server.read("k7") == bytes([7])
        assert len(server.keys()) == 10

    def test_read_batch_returns_none_for_missing(self, server):
        server.write("a", b"1")
        result = server.read_batch(["a", "b"])
        assert result.values["a"] == b"1"
        assert result.values["b"] is None

    def test_overwrite_replaces_value(self, server):
        server.write("a", b"old")
        server.write("a", b"new")
        assert server.read("a") == b"new"

    def test_delete_batch_removes_keys(self, server):
        server.write("a", b"1")
        server.delete_batch(["a"])
        assert not server.contains("a")

    def test_non_bytes_payload_rejected(self, server):
        with pytest.raises(TypeError):
            server.write_batch({"a": "not-bytes"})

    def test_contains(self, server):
        server.write("a", b"1")
        assert server.contains("a")
        assert not server.contains("b")

    def test_snapshot_is_a_copy(self, server):
        server.write("a", b"1")
        snap = server.snapshot()
        server.write("a", b"2")
        assert snap["a"] == b"1"

    def test_size_bytes(self, server):
        server.write("a", b"123")
        server.write("b", b"4567")
        assert server.size_bytes() == 7


class TestTiming:
    def test_dummy_backend_charges_no_time(self):
        server = InMemoryStorageServer(latency="dummy", clock=SimClock())
        server.read_batch([f"k{i}" for i in range(100)])
        assert server.clock.now_ms == pytest.approx(0.0)

    def test_sequential_reads_charge_one_rtt_each(self):
        server = InMemoryStorageServer(latency="server", clock=SimClock())
        server.read_batch(["a", "b", "c"], parallelism=1)
        # 3 waves of 0.3ms plus the tiny per-request service time.
        assert server.clock.now_ms >= 0.9

    def test_parallel_reads_overlap(self):
        serial = InMemoryStorageServer(latency="server", clock=SimClock())
        parallel = InMemoryStorageServer(latency="server", clock=SimClock())
        keys = [f"k{i}" for i in range(32)]
        serial.read_batch(keys, parallelism=1)
        parallel.read_batch(keys, parallelism=32)
        assert parallel.clock.now_ms < serial.clock.now_ms

    def test_charge_latency_false_does_not_advance_clock(self):
        server = InMemoryStorageServer(latency="server_wan", clock=SimClock(),
                                       charge_latency=False)
        server.read_batch(["a", "b"])
        assert server.clock.now_ms == pytest.approx(0.0)

    def test_wan_slower_than_lan(self):
        lan = InMemoryStorageServer(latency="server", clock=SimClock())
        wan = InMemoryStorageServer(latency="server_wan", clock=SimClock())
        lan.read_batch(["a"] * 4, parallelism=1)
        wan.read_batch(["a"] * 4, parallelism=1)
        assert wan.clock.now_ms > lan.clock.now_ms


class TestTraceRecording:
    def test_reads_and_writes_recorded(self, server):
        server.write("a", b"1")
        server.read("a")
        ops = server.trace.ops_by_kind()
        assert ops[StorageOp.WRITE] == 1
        assert ops[StorageOp.READ] == 1

    def test_trace_disabled(self):
        server = InMemoryStorageServer(latency="dummy", record_trace=False)
        server.write("a", b"1")
        assert server.trace is None

    def test_record_batch_false_skips_boundary(self, server):
        server.read_batch(["a"], record_batch=False)
        assert server.trace.batch_shape() == []

    def test_trace_records_payload_sizes(self, server):
        server.write("a", b"12345")
        event = server.trace.events[-1]
        assert event.size_bytes == 5


class TestFailureInjection:
    def test_failed_server_raises(self, server):
        server.fail()
        with pytest.raises(ConnectionError):
            server.read("a")

    def test_recovered_server_serves_again(self, server):
        server.write("a", b"1")
        server.fail()
        server.recover()
        assert server.read("a") == b"1"
