"""Tests for the experiment harness (tiny-scale smoke runs of every figure).

These verify that each experiment function produces rows of the right shape
and that the headline qualitative relationships of the paper hold at reduced
scale.  The benchmark suite runs the same functions at larger scale.
"""

import pytest

from repro.harness import experiments as exp


pytestmark = pytest.mark.filterwarnings("ignore")


class TestParallelism:
    def test_rows_cover_backends_and_modes(self):
        rows = exp.run_parallelism(backends=("dummy", "server"), batch_size=64,
                                   operations=64, num_blocks=2000)
        assert len(rows) == 6
        assert {r.backend for r in rows} == {"dummy", "server"}

    def test_parallelism_helps_on_remote_but_not_dummy(self):
        rows = exp.run_parallelism(backends=("dummy", "server_wan"), batch_size=96,
                                   operations=96, num_blocks=2000)
        by = {(r.backend, r.mode): r.throughput_ops_per_s for r in rows}
        assert by[("server_wan", "parallel")] > 20 * by[("server_wan", "sequential")]
        assert by[("dummy", "parallel_crypto")] < 2 * by[("dummy", "sequential")]


class TestBatchSizeSweep:
    def test_throughput_grows_with_batch_size_on_wan(self):
        rows = exp.run_batch_size_sweep(backends=("server_wan",), batch_sizes=(1, 16, 128),
                                        num_blocks=2000, min_operations=128)
        ordered = sorted(rows, key=lambda r: r.batch_size)
        assert ordered[-1].throughput_ops_per_s > ordered[0].throughput_ops_per_s

    def test_latency_grows_with_batch_size(self):
        rows = exp.run_batch_size_sweep(backends=("server",), batch_sizes=(1, 64),
                                        num_blocks=2000, min_operations=64)
        small, large = sorted(rows, key=lambda r: r.batch_size)
        assert large.latency_ms > small.latency_ms


class TestDelayedVisibilityAndEpochSize:
    def test_write_back_buffering_improves_throughput(self):
        rows = exp.run_delayed_visibility(backends=("server",), batch_size=48,
                                          batches_per_epoch=4, num_blocks=2000)
        by = {r.mode: r.throughput_ops_per_s for r in rows}
        assert by["write_back"] > by["normal"]

    def test_larger_epochs_increase_relative_throughput(self):
        rows = exp.run_epoch_size_oram(backends=("server",), batch_counts=(1, 4, 8),
                                       batch_size=32, num_blocks=2000)
        ordered = sorted(rows, key=lambda r: r.batches_per_epoch)
        assert ordered[-1].relative_increase >= ordered[0].relative_increase
        assert ordered[0].relative_increase == pytest.approx(1.0)


class TestEndToEndAndProxyEpochs:
    def test_end_to_end_rows_shape(self):
        rows = exp.run_end_to_end(applications=("smallbank",), systems=("obladi", "nopriv"),
                                  transactions=20, clients=6, scale=0.01)
        assert len(rows) == 2
        by = {r.system: r for r in rows}
        assert by["obladi"].committed > 0
        assert by["nopriv"].throughput_tps > by["obladi"].throughput_tps
        assert by["obladi"].mean_latency_ms > by["nopriv"].mean_latency_ms

    def test_epoch_size_proxy_rows(self):
        rows = exp.run_epoch_size_proxy(applications=("smallbank",),
                                        epoch_sizes_ms=(25, 100), batch_interval_ms=25.0,
                                        transactions=16, clients=4, scale=0.01)
        assert len(rows) == 2
        assert all(r.throughput_tps >= 0 for r in rows)
        assert rows[0].read_batches < rows[1].read_batches


class TestDurabilityExperiments:
    def test_checkpoint_frequency_rows(self):
        rows = exp.run_checkpoint_frequency(frequencies=(1, 8), backends=("server",),
                                            num_records=300, transactions=12, clients=4)
        assert len(rows) == 2
        assert all(r.throughput_ops_per_s > 0 for r in rows)

    def test_recovery_table_rows(self):
        rows = exp.run_recovery_table(sizes=(300,), backend="server", transactions=10,
                                      clients=4)
        assert len(rows) == 1
        row = rows[0]
        assert 0 < row.durability_slowdown <= 1.2
        assert row.recovery_time_ms > 0
        assert row.tree_levels > 0
        assert row.position_ms >= 0 and row.paths_ms >= 0
