"""Tests for the report renderer."""

from dataclasses import dataclass

import pytest

from repro.harness.report import render_table, rows_to_dicts


@dataclass
class Row:
    name: str
    value: float
    count: int


class TestRowsToDicts:
    def test_dataclass_rows(self):
        rows = rows_to_dicts([Row("a", 1.5, 2)])
        assert rows == [{"name": "a", "value": 1.5, "count": 2}]

    def test_dict_rows_pass_through(self):
        rows = rows_to_dicts([{"x": 1}])
        assert rows == [{"x": 1}]

    def test_unsupported_row_type_rejected(self):
        with pytest.raises(TypeError):
            rows_to_dicts(["not-a-row"])


class TestRenderTable:
    def test_renders_title_and_columns(self):
        text = render_table([Row("alpha", 2.0, 3)], title="My Table")
        assert "My Table" in text
        assert "name" in text and "value" in text
        assert "alpha" in text

    def test_column_subset_and_order(self):
        text = render_table([Row("alpha", 2.0, 3)], columns=["count", "name"])
        header = text.splitlines()[0]
        assert header.index("count") < header.index("name")
        assert "value" not in header

    def test_large_numbers_formatted_with_separators(self):
        text = render_table([Row("x", 123456.0, 1)])
        assert "123,456" in text

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="Empty")

    def test_alignment_consistent(self):
        text = render_table([Row("a", 1.0, 1), Row("bbbb", 22.0, 22)])
        lines = [line for line in text.splitlines() if line.strip()]
        assert len({len(line) for line in lines[1:]}) <= 2
