"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e . --no-build-isolation``)
in offline environments whose setuptools lacks PEP 660 wheel support.
"""

from setuptools import setup

setup()
