#!/usr/bin/env python
"""Profile the tier-1 hot path: a shards=4 SmallBank closed loop.

Runs the same configuration the sharding smoke benchmark exercises —
hash-partitioned Ring ORAM under the Obladi engine, SmallBank closed loop —
under :mod:`cProfile` and prints the top functions by cumulative and by
self time.  This is the profile that motivated the vectorised path-math /
midstate-crypto hot path (see docs/ARCHITECTURE.md, "Performance"); re-run
it after touching the ORAM layer to check where the time actually goes.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/profile_hotpath.py [--transactions N]
        [--accounts N] [--shards N] [--no-encryption] [--top N] [--smoke]

``--smoke`` runs a tiny loop and only asserts that profiling works; CI uses
it so the script itself cannot rot.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time


def build_engine(shards: int, num_accounts: int, encrypt: bool, seed: int = 17):
    """The profiled engine: sharded Obladi over SmallBank, fixed seed."""
    from repro.api import EngineConfig, create_engine

    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(4096, 2 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=64,
                             write_batch_size=64, batch_interval_ms=1.0)
              .with_durability(False)
              .with_encryption(encrypt)
              .with_sharding(shards)
              .with_seed(seed))
    return create_engine("obladi", config)


def run_workload(shards: int, num_accounts: int, transactions: int,
                 clients: int, encrypt: bool, seed: int = 17):
    """One fixed-seed closed-loop run; returns its ``RunStats``."""
    from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

    workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts,
                                                 seed=seed))
    engine = build_engine(shards, num_accounts, encrypt, seed)
    engine.load_initial_data(workload.initial_data())
    return engine.run_closed_loop(workload.transaction_factory,
                                  total_transactions=transactions,
                                  clients=clients)


def main(argv=None) -> int:
    """Profile the closed loop and print the hottest functions."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=192)
    parser.add_argument("--clients", type=int, default=24)
    parser.add_argument("--accounts", type=int, default=400)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--no-encryption", action="store_true",
                        help="profile with the cipher disabled (pad-only)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows to print per ranking")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run: just prove the profile pipeline works")
    args = parser.parse_args(argv)

    if args.smoke:
        args.transactions, args.clients, args.accounts = 24, 8, 100

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    stats = run_workload(args.shards, args.accounts, args.transactions,
                         args.clients, encrypt=not args.no_encryption)
    profiler.disable()
    wall = time.perf_counter() - started

    print(f"committed={stats.committed} aborted={stats.aborted} "
          f"simulated_tps={stats.throughput_tps:.1f} wall={wall:.2f}s")
    ps = pstats.Stats(profiler, stream=sys.stdout)
    print("\n== top by cumulative time ==")
    ps.sort_stats("cumulative").print_stats(args.top)
    print("\n== top by self time ==")
    ps.sort_stats("tottime").print_stats(args.top)

    if args.smoke and stats.committed <= 0:
        print("profile smoke failed: nothing committed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
