#!/usr/bin/env python
"""Docs gate: every exported symbol of the public packages is documented.

Covers ``repro.api``, ``repro.sharding``, ``repro.proxytier``,
``repro.audit``, ``repro.concurrency``, ``repro.elasticity`` and
``repro.harness.perfbench``.

Walks the ``__all__`` of the public packages and fails (exit code 1, listing
the offenders) if any exported class or function — or any public method of
an exported class — lacks a docstring.  Type aliases and plain constants are
skipped: there is nowhere to hang a docstring on them.

Run from the repository root with ``src`` on the path::

    PYTHONPATH=src python scripts/check_docstrings.py
"""

from __future__ import annotations

import importlib
import inspect
import sys

#: Public packages whose exported surface the gate covers.
PACKAGES = ("repro.api", "repro.sharding", "repro.proxytier", "repro.audit",
            "repro.concurrency", "repro.elasticity", "repro.harness.perfbench")


def _missing_in_class(qualname: str, cls: type) -> list:
    """Public methods/properties of ``cls`` defined locally without a docstring."""
    missing = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        target = member.fget if isinstance(member, property) else member
        if isinstance(member, (staticmethod, classmethod)):
            target = member.__func__
        if not (inspect.isfunction(target) or isinstance(member, property)):
            continue
        if not inspect.getdoc(target):
            missing.append(f"{qualname}.{name}")
    return missing


def check_package(package_name: str) -> list:
    """Return the undocumented exported symbols of ``package_name``."""
    package = importlib.import_module(package_name)
    missing = []
    if not inspect.getdoc(package):
        missing.append(package_name)
    for name in getattr(package, "__all__", []):
        symbol = getattr(package, name)
        qualname = f"{package_name}.{name}"
        if inspect.isclass(symbol):
            if not inspect.getdoc(symbol):
                missing.append(qualname)
            missing.extend(_missing_in_class(qualname, symbol))
        elif inspect.isfunction(symbol):
            if not inspect.getdoc(symbol):
                missing.append(qualname)
        # Constants and type aliases (ENGINE_KINDS, ProgramFactory, ...) have
        # no docstring slot; their documentation lives in the module.
    return missing


def main() -> int:
    """Check every gated package; print offenders and return the exit code."""
    missing = []
    for package_name in PACKAGES:
        missing.extend(check_package(package_name))
    if missing:
        print("undocumented exported symbols:")
        for qualname in missing:
            print(f"  - {qualname}")
        return 1
    print(f"docstring gate OK ({', '.join(PACKAGES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
