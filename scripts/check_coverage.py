#!/usr/bin/env python
"""Coverage floor gate for the engine layer (``src/repro/api``).

The conformance and loop-driver suites exist to pin the ``repro.api``
surface down; this gate makes that claim checkable.  After a
``pytest --cov=repro`` run has produced a ``.coverage`` data file, it
reports line coverage restricted to ``src/repro/api/`` and fails (exit
code 1) below the floor.

The gate degrades gracefully: when the ``coverage`` package is not
installed (the tier-1 suite only requires the standard library plus
pytest), it prints a notice and exits 0 — ``scripts/ci.sh`` only invokes
it after a coverage-enabled pytest run.

Run from the repository root::

    PYTHONPATH=src python -m pytest -q --cov=repro
    python scripts/check_coverage.py --min-api 85
"""

from __future__ import annotations

import argparse
import io
import os
import sys

#: The package the floor applies to, as a ``coverage report`` include glob.
API_INCLUDE = "*/repro/api/*"
DEFAULT_FLOOR = 85.0


def main(argv=None) -> int:
    """Enforce the ``src/repro/api`` coverage floor; return the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-api", type=float, default=DEFAULT_FLOOR,
                        help=f"minimum line coverage percent for src/repro/api "
                             f"(default {DEFAULT_FLOOR})")
    parser.add_argument("--data-file", default=".coverage",
                        help="coverage data file produced by pytest --cov")
    args = parser.parse_args(argv)

    try:
        import coverage
    except ImportError:
        print("check_coverage: the 'coverage' package is not installed; "
              "skipping the src/repro/api floor gate")
        return 0

    if not os.path.exists(args.data_file):
        print(f"check_coverage: no {args.data_file!r} data file found — run "
              f"'python -m pytest --cov=repro' first")
        return 1

    cov = coverage.Coverage(data_file=args.data_file)
    cov.load()
    buffer = io.StringIO()
    try:
        percent = cov.report(include=API_INCLUDE, file=buffer,
                             show_missing=False)
    except coverage.exceptions.NoDataError:
        print("check_coverage: the coverage data contains nothing under "
              f"{API_INCLUDE!r}")
        return 1
    print(buffer.getvalue().rstrip())
    if percent < args.min_api:
        print(f"check_coverage: src/repro/api line coverage {percent:.1f}% "
              f"is below the floor of {args.min_api:.1f}%")
        return 1
    print(f"check_coverage: OK — src/repro/api at {percent:.1f}% "
          f"(floor {args.min_api:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
