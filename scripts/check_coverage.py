#!/usr/bin/env python
"""Coverage floor gate for the gated packages.

The conformance and loop-driver suites exist to pin the ``repro.api``
surface down, the auditor suites pin ``repro.audit``, the MVTSO / repair /
serializability suites pin ``repro.concurrency``, and the elasticity
property/conformance suites pin ``repro.elasticity``; this gate makes
those claims checkable.  After a ``pytest --cov=repro`` run has produced a
``.coverage`` data file, it reports line coverage restricted to each gated
package and fails (exit code 1) below its floor.

The gate degrades gracefully: when the ``coverage`` package is not
installed (the tier-1 suite only requires the standard library plus
pytest), it prints a notice and exits 0 — ``scripts/ci.sh`` only invokes
it after a coverage-enabled pytest run.

Run from the repository root::

    PYTHONPATH=src python -m pytest -q --cov=repro
    python scripts/check_coverage.py --min-api 85 --min-audit 85 \
        --min-concurrency 85
"""

from __future__ import annotations

import argparse
import io
import os
import sys

#: The gated packages: label -> (coverage include glob, default floor %).
GATES = {
    "api": ("*/repro/api/*", 85.0),
    "audit": ("*/repro/audit/*", 85.0),
    "concurrency": ("*/repro/concurrency/*", 85.0),
    "elasticity": ("*/repro/elasticity/*", 85.0),
    # The vectorised hot path: the property suite must actually exercise
    # both the numpy and the fallback arms of the batched helpers.
    "oram": ("*/repro/oram/*", 85.0),
}


def _report(cov, include: str) -> float:
    """Line-coverage percent for ``include``, printing the table."""
    buffer = io.StringIO()
    percent = cov.report(include=include, file=buffer, show_missing=False)
    print(buffer.getvalue().rstrip())
    return percent


def main(argv=None) -> int:
    """Enforce the per-package coverage floors; return the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    for label, (include, floor) in GATES.items():
        parser.add_argument(f"--min-{label}", type=float, default=floor,
                            dest=f"min_{label}",
                            help=f"minimum line coverage percent for "
                                 f"{include} (default {floor})")
    parser.add_argument("--data-file", default=".coverage",
                        help="coverage data file produced by pytest --cov")
    args = parser.parse_args(argv)

    try:
        import coverage
    except ImportError:
        print("check_coverage: the 'coverage' package is not installed; "
              "skipping the coverage floor gates")
        return 0

    if not os.path.exists(args.data_file):
        print(f"check_coverage: no {args.data_file!r} data file found — run "
              f"'python -m pytest --cov=repro' first")
        return 1

    cov = coverage.Coverage(data_file=args.data_file)
    cov.load()
    failed = False
    for label, (include, _) in GATES.items():
        floor = getattr(args, f"min_{label}")
        try:
            percent = _report(cov, include)
        except coverage.exceptions.NoDataError:
            print(f"check_coverage: the coverage data contains nothing under "
                  f"{include!r}")
            failed = True
            continue
        if percent < floor:
            print(f"check_coverage: {include} line coverage {percent:.1f}% "
                  f"is below the floor of {floor:.1f}%")
            failed = True
        else:
            print(f"check_coverage: OK — {include} at {percent:.1f}% "
                  f"(floor {floor:.1f}%)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
