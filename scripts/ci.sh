#!/usr/bin/env bash
# CI entry point: the tier-1 test suite plus a quick end-to-end benchmark
# smoke, so regressions in either the unit layer or the figure pipeline
# fail fast.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Docs gate: the README/ARCHITECTURE doctest snippets must execute, and
# every exported repro.api / repro.sharding / repro.proxytier / repro.audit
# / repro.concurrency / repro.elasticity symbol must carry a docstring.
echo "== docs gate: doctests + exported-symbol docstrings =="
python -m doctest docs/ARCHITECTURE.md README.md
python scripts/check_docstrings.py

# Smoke first: an end-to-end regression across the three engines surfaces
# in seconds, before the multi-minute figure regenerations start.
echo "== smoke: Figure 9 end-to-end across all three engines =="
python -m pytest -q benchmarks/test_fig9_end_to_end.py -k smoke

echo "== smoke: conflict repair keeps histories serializable =="
python -m pytest -q benchmarks/test_repair_contention.py -k smoke

echo "== smoke: autoscaled elastic topology beats static under a flash crowd =="
python -m pytest -q benchmarks/test_elasticity_smoke.py

echo "== tier-1: unit, property, integration and benchmark suites =="
# With pytest-cov available the tier-1 run doubles as the coverage run, and
# floors are enforced on src/repro/api, src/repro/audit, src/repro/concurrency
# and src/repro/elasticity — the layers the conformance, loop-driver, auditor,
# MVTSO/repair and elasticity suites are supposed to pin down.
# Without it (the tier-1 dependencies are stdlib + pytest only) the suite
# runs uninstrumented.
if python -c "import pytest_cov" 2>/dev/null; then
    python -m pytest -x -q --cov=repro
    python scripts/check_coverage.py --min-api 85 --min-audit 85 \
        --min-concurrency 85 --min-elasticity 85
else
    echo "(pytest-cov not installed; running without the coverage gate)"
    python -m pytest -x -q
fi
