#!/usr/bin/env bash
# CI entry point: the tier-1 test suite plus a quick end-to-end benchmark
# smoke, so regressions in either the unit layer or the figure pipeline
# fail fast.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Docs gate: the README/ARCHITECTURE doctest snippets must execute, and
# every exported repro.api / repro.sharding / repro.proxytier / repro.audit
# / repro.concurrency / repro.elasticity symbol must carry a docstring.
echo "== docs gate: doctests + exported-symbol docstrings =="
python -m doctest docs/ARCHITECTURE.md README.md
python scripts/check_docstrings.py

# Smoke first: an end-to-end regression across the three engines surfaces
# in seconds, before the multi-minute figure regenerations start.
echo "== smoke: Figure 9 end-to-end across all three engines =="
python -m pytest -q benchmarks/test_fig9_end_to_end.py -k smoke

echo "== smoke: conflict repair keeps histories serializable =="
python -m pytest -q benchmarks/test_repair_contention.py -k smoke

echo "== smoke: autoscaled elastic topology beats static under a flash crowd =="
python -m pytest -q benchmarks/test_elasticity_smoke.py

# Perf gate: a profiled smoke run proves the hot-path instrumentation still
# works, then the trajectory ledger run fails on a >25% wall-clock
# regression of the sharded closed loop against the best recorded baseline
# (and on any fixed-seed simulated-results drift).
echo "== perf: profiled hot-path smoke =="
python scripts/profile_hotpath.py --smoke
echo "== perf: benchmark trajectory ledger (regression gate) =="
python scripts/bench_trajectory.py --scale smoke --check

echo "== tier-1: unit, property, integration and benchmark suites =="
# With pytest-cov available the tier-1 run doubles as the coverage run, and
# floors are enforced on src/repro/api, src/repro/audit, src/repro/concurrency,
# src/repro/elasticity and src/repro/oram — the layers the conformance,
# loop-driver, auditor, MVTSO/repair, elasticity and vectorised-path-math
# suites are supposed to pin down.
# Without it (the tier-1 dependencies are stdlib + pytest only) the suite
# runs uninstrumented.
if python -c "import pytest_cov" 2>/dev/null; then
    python -m pytest -x -q --cov=repro
    python scripts/check_coverage.py --min-api 85 --min-audit 85 \
        --min-concurrency 85 --min-elasticity 85 --min-oram 85
else
    echo "(pytest-cov not installed; running without the coverage gate)"
    python -m pytest -x -q
fi
