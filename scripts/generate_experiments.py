#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every evaluation experiment and record results.

Usage::

    python scripts/generate_experiments.py            # small scale (~2-3 minutes)
    REPRO_BENCH_SCALE=paper python scripts/generate_experiments.py

The script runs the same harness functions the benchmark suite uses and
writes the paper-vs-measured tables into EXPERIMENTS.md.  All measured
numbers are in simulated time (see DESIGN.md for the substitution rationale).
"""

import os
import sys
from datetime import date

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                                "src"))

from repro.harness import experiments as exp          # noqa: E402
from repro.harness.report import render_table         # noqa: E402


SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
PARAMS = {
    "small": dict(oram_objects=20_000, batch_operations=200, transactions=200, clients=48,
                  workload_scale=0.1, recovery_sizes=(1_000, 5_000, 20_000)),
    "paper": dict(oram_objects=100_000, batch_operations=500, transactions=512, clients=96,
                  workload_scale=0.5, recovery_sizes=(10_000, 100_000)),
}[SCALE]


def fig9(out):
    rows = exp.run_end_to_end(transactions=PARAMS["transactions"], clients=PARAMS["clients"],
                              scale=PARAMS["workload_scale"])
    out.append(render_table(rows, title="Figure 9a/9b — end-to-end application performance "
                                        "(simulated)"))
    by = {(r.application, r.system): r for r in rows}
    ratio_rows = []
    for app in ("tpcc", "freehealth", "smallbank"):
        obladi, nopriv = by[(app, "obladi")], by[(app, "nopriv")]
        obladi_w, nopriv_w = by[(app, "obladi_wan")], by[(app, "nopriv_wan")]
        ratio_rows.append({
            "application": app,
            "throughput_ratio_nopriv_over_obladi":
                round(nopriv.throughput_tps / max(obladi.throughput_tps, 1e-9), 1),
            "latency_ratio_obladi_over_nopriv":
                round(obladi.mean_latency_ms / max(nopriv.mean_latency_ms, 1e-9), 1),
            "wan_throughput_ratio":
                round(nopriv_w.throughput_tps / max(obladi_w.throughput_tps, 1e-9), 1),
        })
    out.append(render_table(ratio_rows, title="Figure 9 — headline ratios (this reproduction)"))


def fig10a(out):
    rows = exp.run_parallelism(batch_size=PARAMS["batch_operations"],
                               operations=PARAMS["batch_operations"],
                               num_blocks=PARAMS["oram_objects"])
    out.append(render_table(rows, title="Figure 10a — parallelism "
                                        f"(batch size {PARAMS['batch_operations']}, simulated)"))


def fig10bc(out):
    rows = exp.run_batch_size_sweep(batch_sizes=(1, 10, 100, 500, 1000),
                                    num_blocks=PARAMS["oram_objects"])
    out.append(render_table(rows, title="Figures 10b/10c — batch size sweep (simulated)"))


def fig10d(out):
    rows = exp.run_delayed_visibility(batch_size=max(100, PARAMS["batch_operations"] // 2),
                                      batches_per_epoch=8,
                                      num_blocks=PARAMS["oram_objects"])
    out.append(render_table(rows, title="Figure 10d — delayed visibility (simulated)"))


def fig10e(out):
    rows = exp.run_epoch_size_oram(batch_counts=(1, 2, 4, 8, 16, 32),
                                   batch_size=max(64, PARAMS["batch_operations"] // 4),
                                   num_blocks=PARAMS["oram_objects"])
    out.append(render_table(rows, title="Figure 10e — epoch size impact on the ORAM "
                                        "(simulated)"))


def fig10f(out):
    rows = exp.run_epoch_size_proxy(transactions=max(60, PARAMS["transactions"] // 3),
                                    clients=max(12, PARAMS["clients"] // 3),
                                    scale=PARAMS["workload_scale"] / 2)
    out.append(render_table(rows, title="Figure 10f — epoch size impact on the proxy "
                                        "(simulated)"))


def fig11a(out):
    rows = exp.run_checkpoint_frequency(num_records=max(2000, PARAMS["oram_objects"] // 10),
                                        transactions=max(48, PARAMS["transactions"] // 3),
                                        clients=max(12, PARAMS["clients"] // 3))
    out.append(render_table(rows, title="Figure 11a — checkpoint frequency (simulated)"))


def tab11b(out):
    rows = exp.run_recovery_table(sizes=PARAMS["recovery_sizes"],
                                  transactions=max(32, PARAMS["transactions"] // 4),
                                  clients=max(8, PARAMS["clients"] // 4))
    out.append(render_table(rows, title="Table 11b — durability and recovery (simulated, WAN)"))


HEADER = f"""# EXPERIMENTS — paper vs. measured

This file records, for every table and figure of the evaluation section of
*Obladi: Oblivious Serializable Transactions in the Cloud* (OSDI 2018), what
the paper reports and what this reproduction measures.  It was generated by
``python scripts/generate_experiments.py`` at scale ``{SCALE}`` on {date.today().isoformat()}.

**How to read the numbers.**  The paper's numbers come from a Java prototype
on EC2; this reproduction runs a pure-Python implementation over a
discrete-event simulation of the same storage backends (DESIGN.md documents
every substitution).  Absolute throughput/latency values are therefore *not*
comparable; what the reproduction preserves is the shape of each result —
which system wins, by roughly what factor, and where the trends bend.  Every
"measured" table below is in simulated milliseconds / operations per
simulated second.

| Experiment | Paper's claim | Reproduced? |
|---|---|---|
| Fig. 9a throughput | Obladi within 5x-12x of NoPriv on TPC-C, SmallBank, FreeHealth; NoPriv roughly at MySQL's level | Yes in ordering and order of magnitude; measured ratios are in the 13x-40x band (see ratio table) because the simulated NoPriv suffers less from contention than the real one |
| Fig. 9b latency | Obladi latency ~17x-70x NoPriv (hundreds of ms); WAN adds little for TPC-C | Yes: ~40x-65x, tens to hundreds of simulated ms, WAN dominated by write-back |
| Fig. 10a parallelism | Parallelising hurts on `dummy` (~3x slower), helps 12x/51x/510x on server/Dynamo/WAN | Yes qualitatively: no win on `dummy`, 1-3 orders of magnitude on remote backends, speedup grows with latency |
| Fig. 10b/10c batch size | Throughput grows with batch size to a backend-specific ceiling (Dynamo ~1,750 ops/s); latency grows | Yes: monotone growth, Dynamo saturates lowest among remote backends |
| Fig. 10d delayed visibility | Write buffering gives ~1.5x (server/Dynamo), 1.6x (WAN), 1.1x (dummy) | Yes: 1.5x-2.2x on remote backends, smaller on dummy |
| Fig. 10e epoch size (ORAM) | Throughput grows ~logarithmically with batches/epoch | Yes: monotone, ~1.5-2x by 32 batches/epoch |
| Fig. 10f epoch size (proxy) | Applications are sensitive to epoch length: too short aborts, too long idles | Yes: TPC-C aborts heavily at short epochs; throughput flattens/declines at long ones |
| Fig. 11a checkpoint frequency | Delta checkpoints recover most of durability's cost | Yes: full-every-epoch is the slowest setting; deltas close the gap |
| Table 11b recovery | Slowdown 0.83x-0.89x; recovery 1.5s-6.1s growing with size; position/permutation costs grow with keys, path replay with depth | Yes in structure: slowdown below 1, all components grow with ORAM size, path replay grows slowest |

The raw measured tables follow.

"""


def main() -> None:
    sections = []
    for step in (fig9, fig10a, fig10bc, fig10d, fig10e, fig10f, fig11a, tab11b):
        print(f"running {step.__name__} ...", flush=True)
        step(sections)
    body = HEADER + "\n```\n" + "\n".join(sections) + "```\n"
    path = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        "EXPERIMENTS.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
