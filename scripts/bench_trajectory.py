#!/usr/bin/env python
"""Append a benchmark run to the perf-trajectory ledger and gate regressions.

Runs one of the named wall-clock benchmarks (default: the shards=4 SmallBank
closed loop that the hot-path profile targets), appends the measurement to
``BENCH_trajectory.json`` via :mod:`repro.harness.perfbench`, and — with
``--check`` — fails when the fresh measurement is more than 25% slower than
the best recorded baseline with the same simulated results.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/bench_trajectory.py            # record
    PYTHONPATH=src python scripts/bench_trajectory.py --check    # gate
    PYTHONPATH=src python scripts/bench_trajectory.py --scale smoke --check

The ledger keys every entry by (bench, scale, git SHA) and stores a digest
of the run's ``RunStats`` repr; entries only compete on wall clock when
their simulated results match, so "faster" can never silently mean
"computed something else".
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from profile_hotpath import run_workload  # noqa: E402

#: Scale presets: transactions, clients, accounts.  ``default`` is the
#: profile configuration; ``smoke`` keeps the CI gate to a couple seconds.
SCALES = {
    "default": {"transactions": 192, "clients": 24, "accounts": 400},
    "smoke": {"transactions": 48, "clients": 12, "accounts": 200},
}

BENCHES = ("smallbank-sharded-closed-loop",)


def run_bench(bench: str, scale: str, shards: int = 4, seed: int = 17):
    """One fixed-seed run of ``bench`` at ``scale``; returns its RunStats."""
    if bench not in BENCHES:
        raise ValueError(f"unknown bench {bench!r}; choose from {BENCHES}")
    knobs = SCALES[scale]
    return run_workload(shards=shards, num_accounts=knobs["accounts"],
                        transactions=knobs["transactions"],
                        clients=knobs["clients"], encrypt=True, seed=seed)


def main(argv=None) -> int:
    """Record (and optionally gate) one trajectory measurement."""
    from repro.harness import perfbench

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default=BENCHES[0], choices=BENCHES)
    parser.add_argument("--scale", default="default", choices=sorted(SCALES))
    parser.add_argument("--repeats", type=int, default=3,
                        help="median-of-N wall-clock measurement (default 3)")
    parser.add_argument("--ledger", default=perfbench.DEFAULT_LEDGER)
    parser.add_argument("--no-append", action="store_true",
                        help="measure and check without recording")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) on a >25%% wall-clock regression "
                             "against the best recorded baseline")
    parser.add_argument("--rebaseline", metavar="REASON",
                        help="declare that the simulated results changed on "
                             "purpose (a correctness fix): record this run "
                             "as the new drift baseline instead of failing "
                             "the signature comparison")
    args = parser.parse_args(argv)

    wall, stats = perfbench.median_wall(
        lambda: run_bench(args.bench, args.scale), repeats=args.repeats)
    signature = perfbench.results_signature(stats)
    metrics = {
        "committed": stats.committed,
        "aborted": stats.aborted,
        "simulated_tps": round(stats.throughput_tps, 2),
        "wall_per_committed_ms": round(1e3 * wall / max(stats.committed, 1), 3),
    }
    print(f"{args.bench} [{args.scale}]: wall {wall:.3f}s "
          f"(median of {args.repeats}), committed {stats.committed}, "
          f"simulated {stats.throughput_tps:.1f} tps, {signature}")

    # Simulated results must match every prior entry since the last declared
    # re-baseline: a ledger where "fast" entries computed different answers
    # is not a trajectory.  ``--rebaseline REASON`` is the sanctioned escape
    # hatch for a correctness fix that changes what the simulation should
    # compute; the reason is recorded on the entry.
    entries = perfbench.load_entries(args.ledger)
    prior = [e for e in perfbench.entries_since_rebaseline(
                 entries, args.bench, scale=args.scale)
             if e.get("results_signature")]
    drifted = sorted({e["results_signature"] for e in prior} - {signature})
    if drifted and not args.rebaseline:
        print(f"ERROR: simulated results drifted — this run signs {signature} "
              f"but the ledger holds {', '.join(drifted)} for the same "
              f"(bench, scale); fixed-seed RunStats must stay byte-identical. "
              f"If a correctness fix changed the results on purpose, re-record "
              f"with --rebaseline REASON.",
              file=sys.stderr)
        return 1

    failure = None
    if args.check:
        failure = perfbench.check_regression(args.ledger, args.bench, wall,
                                             scale=args.scale,
                                             signature=signature)
    if not args.no_append:
        perfbench.append_entry(args.ledger, args.bench, wall,
                               scale=args.scale, repeats=args.repeats,
                               metrics=metrics, signature=signature,
                               rebaseline=args.rebaseline)
        print(f"appended to {os.path.relpath(args.ledger)}")
    if failure:
        print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    if args.check:
        best = perfbench.best_baseline(entries, args.bench, scale=args.scale,
                                       signature=signature)
        if best is not None:
            print(f"regression gate OK: within 25% of best recorded "
                  f"{best['wall_s']:.3f}s ({best['git_sha']})")
        else:
            print("regression gate OK: first recorded baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
